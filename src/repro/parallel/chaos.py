"""Deterministic chaos injection for the parallel runtime.

Resilience code that is only exercised by real production failures is
untested code.  This module plants *seeded, reproducible* faults into
the fault-tolerant dispatch path (:mod:`repro.parallel.resilience`) so
every recovery mechanism — retry, pool rebuild, shared-memory fallback,
backend degradation — runs in ordinary tests:

* ``raise`` — the task raises :class:`~repro.errors.TransientWorkerError`;
* ``hang``  — the task sleeps past the policy's task timeout before
  completing normally;
* ``exit``  — the worker dies hard: ``os._exit`` in a process-pool
  worker (breaking the pool), or a raised
  :class:`~repro.errors.WorkerCrashError` on in-process backends where
  a real exit would kill the interpreter;
* ``shm``   — the worker's shared-memory graph attach fails with
  :class:`~repro.errors.ShmAttachError`, forcing the pickle-handoff
  fallback.

Faults are *planned by the coordinator* and shipped to workers with
each task, so no cross-process state is needed and a plan replays
identically on every backend.  Two planners are provided:

* :class:`ChaosPlan` — explicit faults at chosen ``(call, task)``
  indices, each firing a bounded number of times (so retries succeed);
* :class:`ChaosMonkey` — a seeded pseudo-random planter for fuzzing
  (``repro check --chaos``), which only ever faults a task's *first*
  attempt, keeping every run completable.

Install either on a context via ``ParallelContext(chaos=...)``; the
contract under test is that results with chaos enabled are
**bit-identical** to the fault-free run.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ShmAttachError, TransientWorkerError, WorkerCrashError

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "ChaosPlan",
    "ChaosMonkey",
    "run_coordinator_killed",
    "files_appeared",
]

FAULT_KINDS = ("raise", "hang", "exit", "shm")


@dataclass(frozen=True)
class Fault:
    """One planned fault: what to inject and where.

    ``task_index`` addresses a task within a dispatch call;
    ``call_index`` pins the fault to the n-th ``map``/``map_batches``
    call on the context (``None`` = any call).  ``times`` bounds how
    often the fault fires in total, so retried tasks eventually
    succeed.  ``hang_seconds`` only applies to ``kind="hang"``.
    """

    kind: str
    task_index: int = 0
    call_index: Optional[int] = None
    times: int = 1
    hang_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.times < 1:
            raise ValueError("times must be >= 1")


class ChaosPlan:
    """Explicit fault plan with parent-side fired-count bookkeeping.

    The coordinator consults :meth:`fault_for` before dispatching each
    task; because the fired counts live in the parent, a fault fires a
    deterministic number of times even when it kills the worker that
    would otherwise have remembered it.
    """

    def __init__(self, faults: Sequence[Fault]) -> None:
        self.faults = tuple(faults)
        self._fired = [0] * len(self.faults)

    def fault_for(
        self, call_index: int, task_index: int, attempt: int
    ) -> Optional[Fault]:
        """The fault to inject for this dispatch, or None."""
        for j, f in enumerate(self.faults):
            if f.task_index != task_index:
                continue
            if f.call_index is not None and f.call_index != call_index:
                continue
            if self._fired[j] >= f.times:
                continue
            self._fired[j] += 1
            return f
        return None

    @property
    def n_fired(self) -> int:
        return sum(self._fired)

    def reset(self) -> None:
        self._fired = [0] * len(self.faults)


class ChaosMonkey:
    """Seeded pseudo-random fault planter for fuzz drivers.

    Fires on roughly ``rate`` of first-attempt tasks, choosing a kind
    from ``kinds``; the decision is a pure hash of
    ``(seed, call_index, task_index)`` so a failing fuzz run replays
    exactly.  Retries (``attempt > 0``) are never faulted, so every
    run completes under any policy with ``max_retries >= 1``.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        rate: float = 0.05,
        kinds: Sequence[str] = ("raise", "exit"),
        hang_seconds: float = 0.25,
    ) -> None:
        for k in kinds:
            if k not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {k!r}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.seed = int(seed)
        self.rate = float(rate)
        self.kinds = tuple(kinds)
        self.hang_seconds = float(hang_seconds)
        self.n_fired = 0

    def fault_for(
        self, call_index: int, task_index: int, attempt: int
    ) -> Optional[Fault]:
        if attempt > 0 or not self.kinds:
            return None
        h = zlib.crc32(f"{self.seed}:{call_index}:{task_index}".encode())
        if (h & 0xFFFF) / 65536.0 >= self.rate:
            return None
        kind = self.kinds[(h >> 16) % len(self.kinds)]
        self.n_fired += 1
        return Fault(
            kind, task_index=task_index, hang_seconds=self.hang_seconds
        )


# ---------------------------------------------------------------------------
# Process-level chaos: killing the *coordinator*.
#
# The in-process fault kinds above exercise worker death; the durability
# layer (DESIGN §13) claims something stronger — that the coordinator
# itself can die at any instant and a restart resumes bit-identically
# from its last durable checkpoint.  That claim can only be tested by
# actually SIGKILLing a real coordinator process, so the driver below
# spawns one as a subprocess, polls an observable trigger (typically:
# checkpoint files appearing on disk), and delivers an un-catchable
# SIGKILL the moment it fires.
# ---------------------------------------------------------------------------
def files_appeared(directory, pattern: str = "*", count: int = 1):
    """Trigger predicate: ``pattern``-matching files under ``directory``.

    Returns a zero-argument callable for
    :func:`run_coordinator_killed` that fires once at least ``count``
    matching files exist — the natural "the victim has made durable
    progress" signal for checkpoint-directory layouts.
    """
    from pathlib import Path

    root = Path(directory)

    def _trigger() -> bool:
        return root.is_dir() and len(list(root.glob(pattern))) >= count

    return _trigger


def run_coordinator_killed(
    argv: Sequence[str],
    trigger,
    *,
    timeout: float = 120.0,
    poll_interval: float = 0.02,
    env: Optional[dict] = None,
    cwd: Optional[str] = None,
) -> dict:
    """Spawn ``argv`` and SIGKILL it when ``trigger()`` first returns True.

    Returns ``{"outcome": "killed"}`` when the kill landed, or
    ``{"outcome": "exited", "returncode": rc}`` when the process
    finished before the trigger fired (the race the caller must treat
    as "work too fast to interrupt", not a failure).  Raises
    ``TimeoutError`` if neither happens within ``timeout`` seconds.

    SIGKILL (not SIGTERM) on purpose: the durability contract is about
    un-handleable death — no atexit hooks, no flush-on-signal.  Output
    is discarded; the caller asserts on the durable artifacts the
    victim left behind.
    """
    import signal
    import subprocess

    proc = subprocess.Popen(
        list(argv),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=env,
        cwd=cwd,
    )
    deadline = time.monotonic() + timeout
    try:
        while True:
            rc = proc.poll()
            if rc is not None:
                return {"outcome": "exited", "returncode": rc}
            if trigger():
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=30.0)
                return {"outcome": "killed"}
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"coordinator {argv[0]!r} neither exited nor tripped "
                    f"the kill trigger within {timeout}s"
                )
            time.sleep(poll_interval)
    finally:
        if proc.poll() is None:  # never leak the victim
            proc.kill()
            proc.wait(timeout=30.0)


# ---------------------------------------------------------------------------
# Worker-side application.  Module-level functions so the process
# backend can pickle them by reference; the planned fault travels with
# the task as plain data (kind + hang_seconds).
# ---------------------------------------------------------------------------
def _apply(kind: Optional[str], hang_seconds: float) -> None:
    """Execute one planted fault inside the worker (no-op for None)."""
    if kind is None:
        return
    if kind == "raise":
        raise TransientWorkerError("chaos: injected transient failure")
    if kind == "hang":
        time.sleep(hang_seconds)
        return
    if kind == "exit":
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            os._exit(3)  # hard worker death: breaks the process pool
        raise WorkerCrashError(
            "chaos: simulated hard worker exit (in-process backend)"
        )
    if kind == "shm":
        raise ShmAttachError("chaos: injected shm attach failure")
    raise ValueError(f"unknown fault kind {kind!r}")


def run_task(kind, hang_seconds, traced, fn, item):
    """Map-task trampoline: apply any planted fault, then run ``fn``."""
    _apply(kind, hang_seconds)
    if traced:
        from repro.parallel.runtime import _traced_task

        return _traced_task(fn, item)
    return fn(item)


def run_local_batch(kind, hang_seconds, traced, worker, graph, batch, payload):
    """Batch trampoline for serial/thread backends (graph in-process)."""
    _apply(kind, hang_seconds)
    if traced:
        from repro.parallel.runtime import _traced_batch_call

        return _traced_batch_call(worker, graph, batch, payload)
    return worker(graph, batch, payload)


def run_shm_batch(kind, hang_seconds, traced, spec, worker, batch, payload):
    """Batch trampoline for the process backend's shared-memory handoff.

    The ``shm`` fault fires *before* the attach, modelling an attach
    failure the coordinator answers with the pickle fallback.
    """
    from repro.parallel import shm as _shm

    _apply(kind, hang_seconds)
    graph = _shm.attach_graph(spec)
    if traced:
        from repro.parallel.runtime import _traced_batch_call

        return _traced_batch_call(worker, graph, batch, payload)
    return worker(graph, batch, payload)
