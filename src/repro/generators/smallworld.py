"""Watts–Strogatz small-world model (paper ref [40]).

Ring lattice of ``n`` vertices each joined to its ``k`` nearest
neighbors, with every lattice edge rewired to a uniform random endpoint
with probability ``p`` — the original "collective dynamics of
small-world networks" construction: high clustering, low diameter.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph import builder
from repro.graph.csr import Graph, VERTEX_DTYPE


def watts_strogatz(
    n: int,
    k: int,
    p: float,
    *,
    rng: Optional[np.random.Generator] = None,
) -> Graph:
    """Watts–Strogatz graph with even ``k`` lattice degree.

    Rewiring keeps the source endpoint and avoids self-loops; duplicate
    edges are dropped by the CSR builder, so very high ``p`` may yield
    slightly fewer than ``n·k/2`` edges.
    """
    if n < 3:
        raise ValueError("n must be >= 3")
    if k < 2 or k % 2 or k >= n:
        raise ValueError("k must be even, >= 2 and < n")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = rng or np.random.default_rng(0)
    base = np.arange(n, dtype=VERTEX_DTYPE)
    srcs, dsts = [], []
    for d in range(1, k // 2 + 1):
        srcs.append(base)
        dsts.append((base + d) % n)
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    rewire = rng.random(src.shape[0]) < p
    idx = np.nonzero(rewire)[0]
    if idx.shape[0]:
        new_targets = rng.integers(0, n, size=idx.shape[0], dtype=VERTEX_DTYPE)
        # avoid self-loops by re-drawing collisions (a couple of rounds
        # suffice; leftovers are dropped by the builder anyway)
        for _ in range(4):
            bad = new_targets == src[idx]
            if not bad.any():
                break
            new_targets[bad] = rng.integers(
                0, n, size=int(bad.sum()), dtype=VERTEX_DTYPE
            )
        dst = dst.copy()
        dst[idx] = new_targets
    return builder.from_edge_array(n, src, dst, directed=False, dedupe=True)
