"""Planted-partition community benchmarks.

The clustering-quality experiments need graphs with *known* community
structure.  :func:`planted_partition` samples a graph whose vertices
are pre-assigned to blocks, with independent intra-block probability
``p_in`` and inter-block probability ``p_out`` — the model Dasgupta et
al. analyze for spectral methods (paper §2.2) and the standard ground
truth for modularity heuristics.  Block sizes may be uniform or an
explicit (e.g. power-law) size vector, which is how the dataset
surrogates mimic the papers' real networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.graph import builder
from repro.graph.csr import Graph, VERTEX_DTYPE


@dataclass
class PlantedPartition:
    """A sampled benchmark graph plus its ground-truth labels."""

    graph: Graph
    labels: np.ndarray

    @property
    def n_communities(self) -> int:
        return int(np.unique(self.labels).shape[0])


def planted_partition(
    sizes: Sequence[int] | int,
    p_in: float,
    p_out: float,
    *,
    n_blocks: Optional[int] = None,
    degree_weights: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
) -> PlantedPartition:
    """Sample a planted-partition graph.

    ``sizes`` is either an explicit per-block size list or a single
    uniform block size (then ``n_blocks`` is required).  Edges are
    sampled by expected count per block pair (binomial draws of
    endpoint pairs), which is O(m) rather than O(n²).

    ``degree_weights`` (length n, positive) makes the model
    *degree-corrected*: endpoints within each block are drawn
    proportionally to their weight, so a power-law weight vector yields
    the skewed degree distributions of real small-world networks while
    preserving the planted block structure.
    """
    if isinstance(sizes, (int, np.integer)):
        if n_blocks is None or n_blocks < 1:
            raise ValueError("uniform sizes need n_blocks >= 1")
        sizes = [int(sizes)] * int(n_blocks)
    sizes = [int(s) for s in sizes]
    if any(s < 1 for s in sizes):
        raise ValueError("block sizes must be positive")
    for p in (p_in, p_out):
        if not 0.0 <= p <= 1.0:
            raise ValueError("probabilities must be in [0, 1]")
    rng = rng or np.random.default_rng(0)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    n = int(offsets[-1])
    labels = np.repeat(np.arange(len(sizes), dtype=np.int64), sizes)
    block_p: list[Optional[np.ndarray]] = [None] * len(sizes)
    if degree_weights is not None:
        degree_weights = np.asarray(degree_weights, dtype=np.float64)
        if degree_weights.shape[0] != n or np.any(degree_weights <= 0):
            raise ValueError("degree_weights must be positive, length n")
        for b in range(len(sizes)):
            w = degree_weights[offsets[b] : offsets[b + 1]]
            block_p[b] = w / w.sum()

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []

    def draw(block: int, count: int) -> np.ndarray:
        if block_p[block] is None:
            return rng.integers(0, sizes[block], size=count) + offsets[block]
        return rng.choice(sizes[block], size=count, p=block_p[block]) + offsets[block]

    def sample_block_pair(i: int, j: int) -> None:
        ni, nj = sizes[i], sizes[j]
        if i == j:
            possible = ni * (ni - 1) // 2
            p = p_in
        else:
            possible = ni * nj
            p = p_out
        if possible == 0 or p == 0.0:
            return
        count = int(rng.binomial(possible, p))
        if count == 0:
            return
        # Sample with replacement then dedupe (slight undershoot at
        # high densities is immaterial for the benchmark).
        u = draw(i, count)
        v = draw(j, count)
        src_parts.append(u.astype(VERTEX_DTYPE))
        dst_parts.append(v.astype(VERTEX_DTYPE))

    k = len(sizes)
    for i in range(k):
        sample_block_pair(i, i)
        for j in range(i + 1, k):
            sample_block_pair(i, j)

    src = (
        np.concatenate(src_parts) if src_parts else np.empty(0, dtype=VERTEX_DTYPE)
    )
    dst = (
        np.concatenate(dst_parts) if dst_parts else np.empty(0, dtype=VERTEX_DTYPE)
    )
    graph = builder.from_edge_array(n, src, dst, directed=False, dedupe=True)
    return PlantedPartition(graph, labels)
