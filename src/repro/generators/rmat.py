"""R-MAT recursive-matrix graph generator (Chakrabarti–Zhan–Faloutsos).

The paper's synthetic small-world instance "RMAT-SF" (Table 3: 400k
vertices, 1.6M edges) comes from this family: each edge picks one of
the four adjacency-matrix quadrants with probabilities (a, b, c, d)
recursively, ``scale`` times.  Skewed parameters (a ≫ d) produce the
power-law degree distribution and community-like self-similarity the
SNAP optimizations target.

The implementation is fully vectorized: one ``(n_edges, scale)`` array
of quadrant draws, collapsed with bit shifts.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph import builder
from repro.graph.csr import Graph, VERTEX_DTYPE

DEFAULT_PARAMS = (0.45, 0.15, 0.15, 0.25)
"""The GTgraph "SSCA/RMAT" parameter set the SNAP experiments use."""


def rmat(
    scale: int,
    edge_factor: float = 4.0,
    *,
    params: tuple[float, float, float, float] = DEFAULT_PARAMS,
    directed: bool = False,
    rng: Optional[np.random.Generator] = None,
    noise: float = 0.05,
) -> Graph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    ``edge_factor`` is m/n before dedup (the paper's RMAT-SF uses 4).
    ``noise`` jitters the quadrant probabilities per recursion level —
    the standard trick that avoids degree-sequence lockstep.  Self
    loops and duplicates are removed, so the final edge count is
    slightly below ``edge_factor * n``.
    """
    if scale < 1 or scale > 30:
        raise ValueError("scale must be in [1, 30]")
    a, b, c, d = params
    if abs(a + b + c + d - 1.0) > 1e-9 or min(params) < 0:
        raise ValueError("params must be non-negative and sum to 1")
    rng = rng or np.random.default_rng(0)
    n = 1 << scale
    m = int(edge_factor * n)

    rows = np.zeros(m, dtype=VERTEX_DTYPE)
    cols = np.zeros(m, dtype=VERTEX_DTYPE)
    for level in range(scale):
        # Jitter the quadrant probabilities at this level.
        if noise:
            jit = 1.0 + noise * (rng.random(4) * 2.0 - 1.0)
            pa, pb, pc, pd = np.asarray(params) * jit
            s = pa + pb + pc + pd
            pa, pb, pc, pd = pa / s, pb / s, pc / s, pd / s
        else:
            pa, pb, pc, pd = a, b, c, d
        u = rng.random(m)
        # quadrant 0=a (top-left), 1=b (top-right), 2=c (bottom-left),
        # 3=d (bottom-right)
        cum = np.asarray([pa, pa + pb, pa + pb + pc])
        quadrant = np.searchsorted(cum, u, side="right")
        rows = (rows << 1) | (quadrant >= 2).astype(VERTEX_DTYPE)
        cols = (cols << 1) | (quadrant % 2 == 1).astype(VERTEX_DTYPE)
    return builder.from_edge_array(n, rows, cols, directed=directed, dedupe=True)
