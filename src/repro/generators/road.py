"""Nearly-Euclidean "physical" graphs for the Table 1 comparison.

Table 1's "Physical (road)" instance has ~200k vertices and ~1M edges
(average degree ≈ 10) and partitions with a tiny edge cut because "the
degree distribution is relatively constant and most connectivity is
localized".  Two generators reproduce that regime:

* :func:`road_network` — a k-nearest-neighbor geometric graph over
  random points in the unit square (localized connectivity, bounded
  nearly-constant degree, O(√n) diameter);
* :func:`grid_graph` — a plain 2-D lattice, the limiting case.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.spatial import cKDTree

from repro.graph import builder
from repro.graph.csr import Graph, VERTEX_DTYPE


def road_network(
    n: int,
    k: int = 10,
    *,
    rng: Optional[np.random.Generator] = None,
    weighted_by_distance: bool = False,
) -> Graph:
    """k-nearest-neighbor geometric graph on ``n`` uniform points.

    Each vertex connects to its ``k`` Euclidean nearest neighbors; the
    symmetrized result has average degree slightly above ``k``.  With
    ``weighted_by_distance`` the edge weights are the Euclidean lengths
    (useful for SSSP experiments).
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    if k < 1 or k >= n:
        raise ValueError("k must be in [1, n)")
    rng = rng or np.random.default_rng(0)
    pts = rng.random((n, 2))
    tree = cKDTree(pts)
    dists, idx = tree.query(pts, k=k + 1)  # first hit is the point itself
    src = np.repeat(np.arange(n, dtype=VERTEX_DTYPE), k)
    dst = idx[:, 1:].reshape(-1).astype(VERTEX_DTYPE)
    weights = None
    if weighted_by_distance:
        weights = dists[:, 1:].reshape(-1)
    return builder.from_edge_array(
        n, src, dst, weights=weights, directed=False, dedupe=True
    )


def grid_graph(rows: int, cols: int, *, diagonal: bool = False) -> Graph:
    """2-D lattice; with ``diagonal`` each cell also links to its
    down-right neighbor (8-ish connectivity)."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    src, dst = [], []
    idx = lambda r, c: r * cols + c
    for r in range(rows):
        for c in range(cols):
            v = idx(r, c)
            if c + 1 < cols:
                src.append(v)
                dst.append(idx(r, c + 1))
            if r + 1 < rows:
                src.append(v)
                dst.append(idx(r + 1, c))
            if diagonal and r + 1 < rows and c + 1 < cols:
                src.append(v)
                dst.append(idx(r + 1, c + 1))
    return builder.from_edge_array(
        rows * cols,
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        directed=False,
        dedupe=False,
    )
