"""Random graph families: sparse G(n, m), power-law models.

* :func:`gnm_random` — the "Sparse random" instance of Table 1;
* :func:`chung_lu` — random graph with an expected power-law degree
  sequence (vectorized endpoint sampling);
* :func:`barabasi_albert` — preferential attachment, growing hubs the
  way citation/web graphs do;
* :func:`power_law_degrees` — a discrete Zipf-ish degree sequence
  helper shared by the surrogates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph import builder
from repro.graph.csr import Graph, VERTEX_DTYPE


def gnm_random(
    n: int,
    m: int,
    *,
    directed: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> Graph:
    """Uniform simple graph with ``n`` vertices and ``m`` edges.

    Vectorized rejection sampling: draw batches of endpoint pairs, drop
    self-loops/duplicates, repeat until ``m`` distinct edges exist.
    """
    if n < 0 or m < 0:
        raise ValueError("n and m must be non-negative")
    cap = n * (n - 1) // (1 if directed else 2)
    if m > cap:
        raise ValueError(f"m={m} exceeds the simple-graph maximum {cap}")
    rng = rng or np.random.default_rng(0)
    chosen: set[int] = set()
    src_parts, dst_parts = [], []
    need = m
    while need > 0:
        batch = max(64, int(need * 1.3))
        u = rng.integers(0, n, size=batch, dtype=VERTEX_DTYPE)
        v = rng.integers(0, n, size=batch, dtype=VERTEX_DTYPE)
        ok = u != v
        u, v = u[ok], v[ok]
        if not directed:
            u, v = np.minimum(u, v), np.maximum(u, v)
        keys = (u * n + v).tolist()
        for i, key in enumerate(keys):
            if key not in chosen:
                chosen.add(key)
                src_parts.append(int(u[i]))
                dst_parts.append(int(v[i]))
                need -= 1
                if need == 0:
                    break
    return builder.from_edge_array(
        n,
        np.asarray(src_parts, dtype=VERTEX_DTYPE),
        np.asarray(dst_parts, dtype=VERTEX_DTYPE),
        directed=directed,
        dedupe=False,
    )


def power_law_degrees(
    n: int,
    exponent: float = 2.5,
    *,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sample a discrete power-law degree sequence P(k) ∝ k^-exponent."""
    if exponent <= 1.0:
        raise ValueError("exponent must exceed 1")
    rng = rng or np.random.default_rng(0)
    max_degree = max_degree or max(min_degree + 1, int(np.sqrt(n) * 4))
    ks = np.arange(min_degree, max_degree + 1, dtype=np.float64)
    p = ks**-exponent
    p /= p.sum()
    return rng.choice(
        np.arange(min_degree, max_degree + 1), size=n, p=p
    ).astype(np.int64)


def chung_lu(
    degrees: np.ndarray,
    *,
    rng: Optional[np.random.Generator] = None,
) -> Graph:
    """Chung–Lu random graph: P(u~v) ∝ w_u · w_v for target degrees w.

    Edges are sampled by drawing ``Σw/2`` endpoint pairs from the
    degree-weighted distribution; duplicates collapse, so realized
    degrees track (not equal) the targets — standard for the model.
    """
    w = np.asarray(degrees, dtype=np.float64)
    if w.ndim != 1 or w.shape[0] == 0:
        raise ValueError("degrees must be a non-empty 1-D array")
    if np.any(w < 0):
        raise ValueError("degrees must be non-negative")
    rng = rng or np.random.default_rng(0)
    n = w.shape[0]
    total = w.sum()
    if total == 0:
        return builder.from_edge_array(
            n, np.empty(0, dtype=VERTEX_DTYPE), np.empty(0, dtype=VERTEX_DTYPE)
        )
    m = int(total / 2)
    p = w / total
    src = rng.choice(n, size=m, p=p).astype(VERTEX_DTYPE)
    dst = rng.choice(n, size=m, p=p).astype(VERTEX_DTYPE)
    return builder.from_edge_array(n, src, dst, directed=False, dedupe=True)


def barabasi_albert(
    n: int,
    m_per_node: int,
    *,
    rng: Optional[np.random.Generator] = None,
) -> Graph:
    """Barabási–Albert preferential attachment.

    Each arriving vertex attaches to ``m_per_node`` existing vertices
    chosen proportionally to degree (the classic repeated-endpoints
    urn).
    """
    if m_per_node < 1:
        raise ValueError("m_per_node must be >= 1")
    if n <= m_per_node:
        raise ValueError("n must exceed m_per_node")
    rng = rng or np.random.default_rng(0)
    # Seed: a star over the first m_per_node + 1 vertices.
    repeated: list[int] = []
    src: list[int] = []
    dst: list[int] = []
    for v in range(1, m_per_node + 1):
        src.append(0)
        dst.append(v)
        repeated.extend((0, v))
    for v in range(m_per_node + 1, n):
        targets: set[int] = set()
        pool = np.asarray(repeated)
        while len(targets) < m_per_node:
            t = int(pool[rng.integers(0, pool.shape[0])])
            if t != v:
                targets.add(t)
        for t in targets:
            src.append(v)
            dst.append(t)
            repeated.extend((v, t))
    return builder.from_edge_array(
        n,
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        directed=False,
        dedupe=True,
    )
