"""Synthetic graph generators for the paper's experiment families.

* :func:`~repro.generators.rmat.rmat` — the R-MAT recursive-matrix
  generator behind the RMAT-SF instance of Table 3 / Figure 2;
* :func:`~repro.generators.smallworld.watts_strogatz` — the classic
  small-world model [40];
* :mod:`~repro.generators.random_graphs` — sparse G(n, m), Chung–Lu
  power-law, and Barabási–Albert preferential attachment;
* :func:`~repro.generators.road.road_network` — nearly-Euclidean
  geometric graphs standing in for Table 1's "Physical (road)" family;
* :func:`~repro.generators.planted.planted_partition` — community-
  structured benchmarks with known ground truth.
"""

from repro.generators.rmat import rmat
from repro.generators.smallworld import watts_strogatz
from repro.generators.random_graphs import (
    gnm_random,
    chung_lu,
    barabasi_albert,
    power_law_degrees,
)
from repro.generators.road import road_network, grid_graph
from repro.generators.planted import planted_partition, PlantedPartition

__all__ = [
    "rmat",
    "watts_strogatz",
    "gnm_random",
    "chung_lu",
    "barabasi_albert",
    "power_law_degrees",
    "road_network",
    "grid_graph",
    "planted_partition",
    "PlantedPartition",
]
