"""Tests for graph generators and the dataset surrogates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.community import modularity
from repro.datasets import (
    karate_club,
    KARATE_GROUND_TRUTH,
    SURROGATE_SPECS,
    load_surrogate,
    table2_networks,
    table3_networks,
)
from repro.errors import SnapError
from repro.generators import (
    rmat,
    watts_strogatz,
    gnm_random,
    chung_lu,
    barabasi_albert,
    power_law_degrees,
    road_network,
    grid_graph,
    planted_partition,
)
from repro.kernels import connected_components
from repro.metrics import average_clustering, average_shortest_path_length
from repro.metrics.basic import degree_skewness


class TestRmat:
    def test_sizes(self):
        g = rmat(10, 8.0, rng=np.random.default_rng(0))
        assert g.n_vertices == 1024
        # dedupe removes some of the 8192 sampled edges
        assert 4000 < g.n_edges <= 8192

    def test_skewed_degrees(self):
        g = rmat(12, 8.0, rng=np.random.default_rng(1))
        assert degree_skewness(g) > 1.5

    def test_low_diameter(self):
        g = rmat(11, 8.0, rng=np.random.default_rng(2))
        aspl = average_shortest_path_length(
            g, n_samples=30, rng=np.random.default_rng(3)
        )
        assert aspl < 6.0

    def test_directed_mode(self):
        g = rmat(8, 4.0, directed=True, rng=np.random.default_rng(4))
        assert g.directed

    def test_deterministic(self):
        a = rmat(9, 4.0, rng=np.random.default_rng(7))
        b = rmat(9, 4.0, rng=np.random.default_rng(7))
        assert a.n_edges == b.n_edges
        assert np.array_equal(a.targets, b.targets)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            rmat(0)
        with pytest.raises(ValueError):
            rmat(5, params=(0.5, 0.5, 0.5, 0.5))

    def test_zero_noise(self):
        g = rmat(8, 4.0, noise=0.0, rng=np.random.default_rng(1))
        assert g.n_vertices == 256
        assert g.n_edges > 200

    def test_uniform_params_approach_gnm(self):
        # (¼,¼,¼,¼) is an Erdős–Rényi-like matrix: low degree skew
        g = rmat(
            11, 8.0, params=(0.25, 0.25, 0.25, 0.25),
            rng=np.random.default_rng(2),
        )
        assert degree_skew(g.degrees()) < 1.0


class TestWattsStrogatz:
    def test_no_rewire_is_lattice(self):
        g = watts_strogatz(50, 4, 0.0)
        assert g.n_edges == 100
        assert (g.degrees() == 4).all()

    def test_high_clustering_low_rewire(self):
        g = watts_strogatz(500, 8, 0.05, rng=np.random.default_rng(0))
        assert average_clustering(g) > 0.4

    def test_rewiring_shrinks_paths(self):
        ring = watts_strogatz(400, 6, 0.0)
        sw = watts_strogatz(400, 6, 0.2, rng=np.random.default_rng(1))
        a0 = average_shortest_path_length(ring, n_samples=25, rng=np.random.default_rng(2))
        a1 = average_shortest_path_length(sw, n_samples=25, rng=np.random.default_rng(2))
        assert a1 < a0 / 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(ValueError):
            watts_strogatz(10, 4, 1.5)


class TestRandomFamilies:
    def test_gnm_exact_edge_count(self):
        g = gnm_random(200, 800, rng=np.random.default_rng(0))
        assert g.n_vertices == 200
        assert g.n_edges == 800

    def test_gnm_overfull_rejected(self):
        with pytest.raises(ValueError):
            gnm_random(4, 100)

    def test_gnm_directed(self):
        g = gnm_random(50, 300, directed=True, rng=np.random.default_rng(1))
        assert g.directed and g.n_edges == 300

    def test_power_law_degrees_range(self):
        d = power_law_degrees(1000, 2.5, min_degree=2, rng=np.random.default_rng(2))
        assert d.min() >= 2
        assert degree_skew(d) > 1.0

    def test_chung_lu_tracks_targets(self):
        target = power_law_degrees(800, 2.3, min_degree=3, rng=np.random.default_rng(3))
        g = chung_lu(target, rng=np.random.default_rng(4))
        # realized average degree within 40% of target average
        assert abs(g.degrees().mean() - target.mean()) < 0.4 * target.mean()

    def test_ba_hub_growth(self):
        g = barabasi_albert(500, 3, rng=np.random.default_rng(5))
        assert g.degrees().max() > 20
        labels = connected_components(g)
        assert np.unique(labels).shape[0] == 1  # BA graphs are connected

    def test_ba_invalid(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 5)


class TestRoadAndGrid:
    def test_road_localized(self):
        g = road_network(800, 8, rng=np.random.default_rng(0))
        assert degree_skewness(g) < 1.0  # near-constant degrees
        assert average_shortest_path_length(
            g, n_samples=20, rng=np.random.default_rng(1)
        ) > 5.0  # O(sqrt n) distances, not log

    def test_road_weighted(self):
        g = road_network(100, 4, weighted_by_distance=True)
        assert g.is_weighted
        assert g.edge_weights().max() < np.sqrt(2.0)

    def test_grid_structure(self):
        g = grid_graph(4, 5)
        assert g.n_vertices == 20
        assert g.n_edges == 4 * 4 + 3 * 5  # horizontal + vertical
        assert g.degrees().max() == 4

    def test_grid_diagonal(self):
        g = grid_graph(3, 3, diagonal=True)
        assert g.has_edge(0, 4)


class TestPlantedPartition:
    def test_ground_truth_high_modularity(self):
        pp = planted_partition([30] * 5, 0.4, 0.01, rng=np.random.default_rng(0))
        assert modularity(pp.graph, pp.labels) > 0.5

    def test_sizes_and_labels(self):
        pp = planted_partition([10, 20, 30], 0.5, 0.02, rng=np.random.default_rng(1))
        assert pp.graph.n_vertices == 60
        assert pp.n_communities == 3
        assert np.bincount(pp.labels).tolist() == [10, 20, 30]

    def test_uniform_mode(self):
        pp = planted_partition(15, 0.3, 0.01, n_blocks=4)
        assert pp.graph.n_vertices == 60

    def test_zero_probability(self):
        pp = planted_partition([10, 10], 0.0, 0.0)
        assert pp.graph.n_edges == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            planted_partition(10, 0.5, 0.1)  # missing n_blocks
        with pytest.raises(ValueError):
            planted_partition([10], 1.5, 0.0)


class TestDatasets:
    def test_karate_exact(self):
        g = karate_club()
        assert g.n_vertices == 34
        assert g.n_edges == 78
        assert g.degrees()[33] == 17  # the instructor hub
        assert KARATE_GROUND_TRUTH.shape[0] == 34

    def test_karate_ground_truth_modularity(self):
        g = karate_club()
        assert modularity(g, KARATE_GROUND_TRUTH) == pytest.approx(0.3582, abs=1e-3)

    def test_surrogate_sizes_track_paper(self):
        for name in ("polbooks", "email", "PPI"):
            spec = SURROGATE_SPECS[name]
            g = load_surrogate(name, scale=1.0)
            assert g.n_vertices == spec.paper_n
            assert abs(g.n_edges - spec.paper_m) < 0.25 * spec.paper_m

    def test_surrogate_scaling(self):
        g = load_surrogate("email", scale=0.25)
        assert g.n_vertices == pytest.approx(1133 * 0.25, abs=2)

    def test_directed_surrogates(self):
        g = load_surrogate("Citations", scale=0.05)
        assert g.directed

    def test_table2_set(self):
        nets = table2_networks(scale=0.2)
        assert set(nets) == {
            "karate", "polbooks", "jazz", "metabolic", "email", "keysigning"
        }
        assert nets["karate"].n_vertices == 34  # never scaled

    def test_table3_set(self):
        nets = table3_networks(scale=0.01)
        assert set(nets) == {
            "PPI", "Citations", "DBLP", "NDwww", "Actor", "RMAT-SF"
        }

    def test_unknown_rejected(self):
        with pytest.raises(SnapError):
            load_surrogate("facebook")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            load_surrogate("email", scale=0.0)

    def test_keysigning_has_community_structure(self):
        from repro.community import pla

        g = load_surrogate("keysigning", scale=0.1, rng=np.random.default_rng(0))
        r = pla(g)
        assert r.modularity > 0.5  # strong structure, as in Table 2


def degree_skew(d: np.ndarray) -> float:
    d = d.astype(np.float64)
    mu, sd = d.mean(), d.std()
    return float(((d - mu) ** 3).mean() / sd**3) if sd else 0.0
