"""Batched multi-source traversal engine: parity and backend tests.

The batched engine (``msbfs`` + batched Brandes) must be an *exact*
drop-in for the per-source loops it replaces, on every graph family the
suite exercises and through every execution backend:

* ``msbfs`` lane ``k`` reproduces ``bfs(g, sources[k])`` distances
  exactly, including under :class:`EdgeSubsetView` edge masks and
  ``max_depth`` truncation (direction-optimized levels included);
* batched Brandes matches the looped per-source path to 1e-9 on vertex
  and edge scores (karate + R-MAT + planted-partition, masked and not);
* ``backend="process"`` is bitwise-identical to ``backend="serial"``
  and hands the CSR arrays to workers zero-copy via shared memory.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.centrality.betweenness import brandes
from repro.centrality.closeness import closeness_centrality
from repro.datasets.karate import karate_club
from repro.generators.planted import planted_partition
from repro.generators.rmat import rmat
from repro.graph.csr import EdgeSubsetView
from repro.kernels.bfs import bfs, default_batch_size, msbfs, source_batches
from repro.parallel.runtime import ParallelContext
from repro.parallel.shm import attach_graph, share_graph


def _graphs():
    pp = planted_partition(30, 0.25, 0.02, n_blocks=4, rng=np.random.default_rng(3))
    return {
        "karate": karate_club(),
        "rmat": rmat(8, 8.0, rng=np.random.default_rng(11)),
        "planted": pp.graph if hasattr(pp, "graph") else pp,
    }


def _views(graph, seed=7):
    rng = np.random.default_rng(seed)
    mask = np.ones(graph.n_edges, dtype=bool)
    mask[rng.random(graph.n_edges) < 0.3] = False
    return [graph, EdgeSubsetView(graph, mask)]


GRAPHS = _graphs()


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_msbfs_matches_per_source_bfs(name):
    graph = GRAPHS[name]
    rng = np.random.default_rng(5)
    for gv in _views(graph):
        srcs = rng.choice(graph.n_vertices, size=min(graph.n_vertices, 40), replace=False)
        res = msbfs(gv, srcs)
        assert res.distances.shape == (srcs.shape[0], graph.n_vertices)
        for lane, s in enumerate(srcs):
            expected = bfs(gv, int(s)).distances
            assert np.array_equal(res.distances[lane], expected.astype(res.distances.dtype))


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_msbfs_max_depth_parity(name):
    graph = GRAPHS[name]
    rng = np.random.default_rng(6)
    for gv in _views(graph):
        srcs = rng.choice(graph.n_vertices, size=min(graph.n_vertices, 12), replace=False)
        res = msbfs(gv, srcs, max_depth=2)
        for lane, s in enumerate(srcs):
            expected = bfs(gv, int(s), max_depth=2).distances
            assert np.array_equal(res.distances[lane], expected.astype(res.distances.dtype))


def test_msbfs_empty_and_bad_sources():
    graph = GRAPHS["karate"]
    res = msbfs(graph, [])
    assert res.distances.shape == (0, graph.n_vertices)
    with pytest.raises(Exception):
        msbfs(graph, [graph.n_vertices])


@pytest.mark.parametrize("name", sorted(GRAPHS))
@pytest.mark.parametrize("batch_size", [None, 2, 7])
def test_batched_brandes_matches_looped(name, batch_size):
    graph = GRAPHS[name]
    for gv in _views(graph):
        batched = brandes(gv, engine="batched", batch_size=batch_size)
        looped = brandes(gv, engine="looped")
        np.testing.assert_allclose(batched.vertex, looped.vertex, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(batched.edge, looped.edge, rtol=1e-9, atol=1e-9)


def test_batched_brandes_source_subset_and_normalized():
    graph = GRAPHS["rmat"]
    srcs = list(range(0, graph.n_vertices, 3))
    batched = brandes(graph, sources=srcs, engine="batched", normalized=True)
    looped = brandes(graph, sources=srcs, engine="looped", normalized=True)
    np.testing.assert_allclose(batched.vertex, looped.vertex, rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(batched.edge, looped.edge, rtol=1e-9, atol=1e-9)


def test_source_batches_shapes():
    batches = source_batches(range(10), 4, 100)
    assert [len(b) for b in batches] == [4, 4, 2]
    assert default_batch_size(0) == 1
    assert default_batch_size(10**9) == 1


def test_process_backend_bitwise_identical_to_serial():
    graph = GRAPHS["rmat"]
    serial = brandes(graph, engine="batched")
    with ParallelContext(2, backend="process") as ctx:
        via_process = brandes(graph, engine="batched", ctx=ctx)
    assert np.array_equal(serial.vertex, via_process.vertex)
    assert np.array_equal(serial.edge, via_process.edge)


def test_process_backend_closeness_bitwise_identical():
    graph = GRAPHS["planted"]
    serial = closeness_centrality(graph)
    with ParallelContext(2, backend="process") as ctx:
        via_process = closeness_centrality(graph, ctx=ctx)
    assert np.array_equal(serial, via_process)


def test_thread_backend_identical_to_serial():
    graph = GRAPHS["rmat"]
    serial = brandes(graph, engine="batched")
    with ParallelContext(2, backend="thread") as ctx:
        via_threads = brandes(graph, engine="batched", ctx=ctx)
    assert np.array_equal(serial.vertex, via_threads.vertex)
    assert np.array_equal(serial.edge, via_threads.edge)


def test_shared_graph_attach_is_zero_copy():
    graph = GRAPHS["rmat"]
    shared = share_graph(graph)
    try:
        attached = attach_graph(shared.spec, cache=False)
        # Views over the mapped segment, not copies.
        for arr in (attached.offsets, attached.targets, attached.arc_edge_ids):
            assert not arr.flags["OWNDATA"]
        assert np.array_equal(attached.offsets, graph.offsets)
        assert np.array_equal(attached.targets, graph.targets)
        assert attached.n_edges == graph.n_edges
        # Write-through proves both views alias one segment.
        original = int(attached.targets[0])
        view2 = attach_graph(shared.spec, cache=False)
        attached.targets[0] = original + 1
        assert int(view2.targets[0]) == original + 1
        attached.targets[0] = original
        # Traversals on the attached graph match the original.
        assert np.array_equal(bfs(attached, 0).distances, bfs(graph, 0).distances)
    finally:
        shared.close()


def test_shared_graph_close_idempotent():
    shared = share_graph(GRAPHS["karate"])
    shared.close()
    shared.close()  # second close is a no-op
    assert shared.shm is None
