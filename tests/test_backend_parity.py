"""Backend parity: every registered algorithm, identical on all backends.

Each entry of :data:`SPEC` runs a registered algorithm on the karate
club graph through ``repro.run`` under serial, thread and process
execution, asserting bit-identical (1e-9 for floats) result payloads
and identical span-tree structure.  ``test_spec_covers_registry`` fails
the moment a new ``@algorithm`` is registered without a parity entry —
closing the gap where new algorithms silently skip parity coverage.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.datasets.karate import karate_club
from repro.obs.api import ALGORITHMS

BACKENDS = ("serial", "thread", "process")

#: algorithm name -> (positional operands, keyword arguments).
#: Randomized algorithms get seed=0 so all backends draw the same rng.
#: A ``name@variant`` key re-runs the same registered algorithm with a
#: different argument profile (the ``@variant`` suffix is stripped).
SPEC: dict[str, tuple[tuple, dict]] = {
    "approximate_vertex_betweenness": ((0,), {"seed": 0}),
    "articulation_points": ((), {}),
    "betweenness": ((), {}),
    "bfs": ((0,), {}),
    "biconnected_components": ((), {}),
    "boruvka_msf": ((), {}),
    "brandes": ((), {}),
    "bridges": ((), {}),
    "closeness": ((), {}),
    "cnm": ((), {}),
    "connected_components": ((), {}),
    "degree": ((), {}),
    "delta_stepping": ((0,), {}),
    "dijkstra": ((0,), {}),
    "edge_betweenness": ((), {}),
    "girvan_newman": ((), {"patience": 5}),
    "kruskal_msf": ((), {}),
    "local_resweep": ((), {"touched": [0, 33]}),
    "minimum_spanning_forest": ((), {}),
    "msbfs": (([0, 5, 33],), {}),
    "multilevel_bisection": ((), {"seed": 0}),
    "multilevel_kway": ((4,), {"seed": 0}),
    "multilevel_recursive_bisection": ((4,), {"seed": 0}),
    "pbd": ((), {"seed": 0, "patience": 5}),
    "pla": ((), {"seed": 0}),
    "pla@multilevel": ((), {"multilevel": True, "seed": 0}),
    "pma": ((), {}),
    "prim_mst": ((0,), {}),
    "sampled_betweenness": ((), {"seed": 0}),
    "spectral_bisection": ((), {"seed": 0}),
    "spectral_kway": ((4,), {"seed": 0}),
    "spectral_modularity": ((), {"seed": 0}),
    "st_connectivity": ((0, 33), {}),
    # "community" is included so modularity is a float (projectable);
    # per-batch checksums make cross-backend drift loud.
    "stream_replay": ((), {
        "policy": "bfs", "batch_size": 8, "k": 5,
        "analytics": ["components", "stats", "degree", "community"],
    }),
}


def test_spec_covers_registry():
    """Every registered algorithm must have a parity table entry."""
    covered = {name.partition("@")[0] for name in SPEC}
    missing = sorted(set(ALGORITHMS) - covered)
    stale = sorted(covered - set(ALGORITHMS))
    assert not missing, (
        f"algorithms registered without backend-parity coverage: {missing}; "
        f"add them to SPEC in {__file__}"
    )
    assert not stale, f"SPEC entries for unregistered algorithms: {stale}"


def _project(value) -> dict[str, np.ndarray]:
    """Flatten any result payload to named arrays for comparison."""
    if isinstance(value, np.ndarray):
        return {"value": value}
    if isinstance(value, (bool, np.bool_, int, np.integer, float, np.floating)):
        return {"value": np.asarray([float(value)])}
    if isinstance(value, tuple) and all(
        isinstance(x, np.ndarray) for x in value
    ):
        return {f"item{i}": x for i, x in enumerate(value)}
    out: dict[str, np.ndarray] = {}
    for attr in ("distances", "parents", "labels", "edge_component",
                 "articulation_mask", "bridge_mask", "vertex", "edge",
                 "batch_checksums", "community_labels"):
        if hasattr(value, attr):
            out[attr] = np.asarray(getattr(value, attr))
    for attr in ("modularity", "n_levels", "n_components", "estimate",
                 "n_samples", "n_sources", "stopped_early",
                 "n_batches", "n_triangles", "n_wedges",
                 "global_clustering"):
        if hasattr(value, attr):
            out[attr] = np.asarray([float(getattr(value, attr))])
    assert out, f"no projection rule for payload type {type(value).__name__}"
    return out


def _assert_same(name: str, backend: str, got: dict, ref: dict) -> None:
    assert got.keys() == ref.keys()
    for key in ref:
        a, b = got[key], ref[key]
        assert a.shape == b.shape, (
            f"{name} [{backend}]: {key} shape {a.shape} != {b.shape}"
        )
        if np.issubdtype(a.dtype, np.floating):
            assert np.allclose(a, b, rtol=1e-9, atol=1e-9, equal_nan=True), (
                f"{name} [{backend}]: {key} deviates from serial result"
            )
        else:
            assert np.array_equal(a, b), (
                f"{name} [{backend}]: {key} differs from serial result"
            )


@pytest.fixture(scope="module")
def karate():
    return karate_club()


@pytest.mark.parametrize("name", sorted(SPEC))
def test_backend_parity(name, karate):
    operands, kwargs = SPEC[name]
    algo = name.partition("@")[0]
    results = {
        b: repro.run(algo, karate, *operands, backend=b, n_workers=2, **kwargs)
        for b in BACKENDS
    }
    ref = _project(results["serial"].value)
    ref_structure = results["serial"].trace.structure()
    for backend in BACKENDS[1:]:
        _assert_same(name, backend, _project(results[backend].value), ref)
        assert results[backend].trace.structure() == ref_structure, (
            f"{name} [{backend}]: span-tree structure diverges from serial"
        )


def _assert_identical(name: str, label: str, got: dict, ref: dict) -> None:
    """Bit-exact across kernel tiers — no float tolerance at all."""
    assert got.keys() == ref.keys()
    for key in ref:
        a, b = got[key], ref[key]
        assert a.shape == b.shape, (
            f"{name} [{label}]: {key} shape {a.shape} != {b.shape}"
        )
        assert np.array_equal(a, b, equal_nan=True), (
            f"{name} [{label}]: {key} not bit-identical to the numpy tier"
        )


@pytest.mark.parametrize("name", sorted(SPEC))
def test_kernel_tier_parity(name, karate):
    """Compiled tier == numpy tier, bit for bit, on every algorithm.

    Runs the numpy-tier serial result as reference, then the compiled
    tier under serial and process execution (compiled kernels must work
    inside process-backend workers).  Skips cleanly when numba is not
    installed — the compiled tier is then unreachable by construction.
    """
    from repro.kernels import dispatch

    if not dispatch.numba_available():
        pytest.skip("numba not installed; compiled tier unavailable")
    operands, kwargs = SPEC[name]
    algo = name.partition("@")[0]
    ref_run = repro.run(
        algo, karate, *operands, backend="serial", n_workers=2,
        kernel_tier="numpy", **kwargs,
    )
    ref = _project(ref_run.value)
    ref_structure = ref_run.trace.structure()
    for backend in ("serial", "process"):
        res = repro.run(
            algo, karate, *operands, backend=backend, n_workers=2,
            kernel_tier="compiled", **kwargs,
        )
        _assert_identical(
            name, f"compiled/{backend}", _project(res.value), ref
        )
        assert res.trace.structure() == ref_structure, (
            f"{name} [compiled/{backend}]: span-tree structure diverges"
        )


@pytest.mark.parametrize("name", sorted(SPEC))
def test_api_facade_parity(name, karate):
    """The ``repro.api`` served path returns what the engine returns.

    Every registry algorithm is dispatched once through a Session's
    coalescing scheduler (handle path) and once directly; the payloads
    must be bit-identical.  ``bfs`` is the documented exception: the
    served form is the distances row of a one-lane msbfs (no parent
    tree), so only its distances are compared.
    """
    import repro.api as api

    operands, kwargs = SPEC[name]
    algo = name.partition("@")[0]
    direct = repro.run(
        algo, karate, *operands, backend="serial", trace=False, **kwargs
    )
    with api.Session(max_batch_delay=0.001) as session:
        handle = session.add("karate", karate)
        served = session.run(algo, handle, *operands, **kwargs)
    if algo == "bfs":
        assert np.array_equal(served.value, direct.value.distances)
        return
    _assert_identical(
        name, "api-facade", _project(served.value), _project(direct.value)
    )
