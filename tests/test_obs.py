"""Tests for the observability layer: tracer, canonical API, run()."""

from __future__ import annotations

import json
import time
import warnings

import numpy as np
import pytest

import repro
from repro.centrality.betweenness import betweenness_centrality, brandes
from repro.centrality.closeness import closeness_centrality
from repro.community.pbd import pbd
from repro.community.pla import pla
from repro.generators import rmat
from repro.obs import (
    ALGORITHMS,
    NULL_TRACER,
    RunResult,
    Span,
    Tracer,
    current_tracer,
    flame_summary,
    get_algorithm,
    run,
    use_tracer,
)
from repro.parallel.runtime import ParallelContext


@pytest.fixture(scope="module")
def small_rmat():
    return rmat(
        scale=7, edge_factor=6, rng=np.random.default_rng(11)
    ).as_undirected()


# ---------------------------------------------------------------------------
# Tracer / Span basics
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_attrs(self):
        tr = Tracer()
        with tr.span("outer", a=1) as outer:
            with tr.span("inner") as inner:
                inner.set(b=2).add("count").add("count")
            outer.set(done=True)
        root = tr.finish()
        assert root.structure() == ("trace", (("outer", (("inner", ()),)),))
        (outer,) = root.children
        assert outer.attrs == {"a": 1, "done": True}
        (inner,) = outer.children
        assert inner.attrs == {"b": 2, "count": 2}
        assert root.t1 is not None and root.duration >= 0.0

    def test_end_heals_unclosed_children(self):
        tr = Tracer()
        outer = tr.begin("outer")
        tr.begin("left_open")
        tr.end(outer, flagged=1)  # closes left_open too
        root = tr.finish()
        assert root.structure() == ("trace", (("outer", (("left_open", ()),)),))
        assert all(sp.t1 is not None for _, sp in root.walk())
        assert outer.attrs["flagged"] == 1

    def test_to_dict_roundtrip(self):
        tr = Tracer()
        with tr.span("a", n=3):
            with tr.span("b"):
                pass
        root = tr.finish()
        clone = Span.from_dict(root.to_dict())
        assert clone.structure() == root.structure()
        assert clone.find("a")[0].attrs == {"n": 3}
        assert clone.duration == pytest.approx(root.duration, abs=1e-6)
        json.dumps(root.to_dict())  # JSON-serializable

    def test_find_and_walk(self):
        tr = Tracer()
        with tr.span("x"):
            with tr.span("leaf"):
                pass
            with tr.span("leaf"):
                pass
        root = tr.finish()
        assert len(root.find("leaf")) == 2
        depths = {sp.name: d for d, sp in root.walk()}
        assert depths == {"trace": 0, "x": 1, "leaf": 2}
        assert root.n_spans == 4

    def test_max_spans_budget(self):
        tr = Tracer(max_spans=5)
        for _ in range(20):
            with tr.span("s"):
                pass
        root = tr.finish()
        assert root.n_spans == 6  # root + 5 recorded
        assert tr.n_dropped == 15
        assert root.attrs["n_dropped_spans"] == 15

    def test_graft(self):
        sub = Tracer()
        with sub.span("task"):
            pass
        data = sub.finish().children[0].to_dict()
        tr = Tracer()
        with tr.span("map"):
            tr.graft(data, index=0)
        root = tr.finish()
        assert root.structure() == ("trace", (("map", (("task", ()),)),))
        assert root.find("task")[0].attrs["index"] == 0


class TestNullTracer:
    def test_falsy_noop(self):
        assert not NULL_TRACER
        assert bool(Tracer())
        sp = NULL_TRACER.begin("x")
        assert not sp
        assert sp.set(a=1) is sp and sp.add("k") is sp
        with NULL_TRACER.span("y") as sp2:
            assert not sp2
        assert NULL_TRACER.graft({"name": "t"}) is None
        assert NULL_TRACER.finish() is None

    def test_ambient_default_and_restore(self):
        assert current_tracer() is NULL_TRACER
        tr = Tracer()
        with use_tracer(tr):
            assert current_tracer() is tr
            with use_tracer(None):
                assert current_tracer() is NULL_TRACER
            assert current_tracer() is tr
        assert current_tracer() is NULL_TRACER


# ---------------------------------------------------------------------------
# Canonical API: trace=/seed=/legacy shims
# ---------------------------------------------------------------------------


class TestAlgorithmSurface:
    def test_trace_records_algorithm_span(self, small_rmat):
        tr = Tracer()
        closeness_centrality(small_rmat, trace=tr)
        root = tr.finish()
        assert [c.name for c in root.children] == ["closeness"]
        assert root.children[0].attrs["n_vertices"] == small_rmat.n_vertices

    def test_ambient_tracer_picked_up(self, small_rmat):
        tr = Tracer()
        with use_tracer(tr):
            closeness_centrality(small_rmat)
        assert tr.finish().find("closeness")

    def test_nested_algorithms_nest(self, two_triangles_bridge):
        tr = Tracer()
        pbd(two_triangles_bridge, trace=tr, max_iterations=3)
        root = tr.finish()
        (pbd_span,) = root.children
        assert pbd_span.name == "pbd"
        # pBD drives Brandes rescorings: they must appear *inside* pbd.
        assert root.find("brandes")
        for sp in root.find("brandes"):
            assert sp is not pbd_span

    def test_legacy_positionals_warn_and_map(self, small_rmat):
        with pytest.warns(DeprecationWarning, match="sources"):
            legacy = closeness_centrality(small_rmat, np.arange(5))
        modern = closeness_centrality(small_rmat, sources=np.arange(5))
        np.testing.assert_allclose(legacy, modern)

    def test_legacy_second_positional(self, small_rmat):
        with pytest.warns(DeprecationWarning, match="normalized"):
            legacy = betweenness_centrality(small_rmat, False)
        modern = betweenness_centrality(small_rmat, normalized=False)
        np.testing.assert_allclose(legacy, modern)

    def test_too_many_positionals_raise(self, small_rmat):
        with pytest.raises(TypeError, match="positional operand"):
            closeness_centrality(small_rmat, None, True, "extra")

    def test_duplicate_keyword_raises(self, small_rmat):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError, match="multiple values"):
                closeness_centrality(small_rmat, None, True, wf_improved=True)

    def test_seed_matches_rng(self, two_triangles_bridge):
        a = pla(two_triangles_bridge, seed=3)
        b = pla(two_triangles_bridge, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_seed_and_rng_conflict(self, two_triangles_bridge):
        with pytest.raises(TypeError, match="not both"):
            pla(two_triangles_bridge, seed=3, rng=np.random.default_rng(3))

    def test_seed_on_seedless_algorithm(self, small_rmat):
        with pytest.raises(TypeError, match="seed"):
            closeness_centrality(small_rmat, seed=1)

    def test_registry(self):
        assert "betweenness" in ALGORITHMS
        assert "pbd" in ALGORITHMS
        assert get_algorithm("closeness") is closeness_centrality
        with pytest.raises(KeyError, match="unknown algorithm"):
            get_algorithm("nope")
        assert repro.algorithm_names() == sorted(ALGORITHMS)

    def test_top_level_imports(self):
        from repro import closeness_centrality as cc, pbd as p  # noqa: F401

        for name in ("pbd", "closeness_centrality", "run", "Tracer"):
            assert name in repro.__all__


# ---------------------------------------------------------------------------
# Span-structure parity across execution backends
# ---------------------------------------------------------------------------


BACKENDS = ("serial", "thread", "process")


def _traced_structure(fn, graph, backend, **kwargs):
    tr = Tracer()
    with ParallelContext(2, backend=backend, trace=tr) as ctx:
        fn(graph, ctx=ctx, trace=tr, **kwargs)
    return tr.finish().structure()


class TestBackendParity:
    def test_closeness_structure_identical(self, small_rmat):
        structures = {
            b: _traced_structure(closeness_centrality, small_rmat, b)
            for b in BACKENDS
        }
        assert structures["thread"] == structures["serial"]
        assert structures["process"] == structures["serial"]
        # The tree actually covers traversal levels and batches.
        names = {"map_batches", "batch", "msbfs", "level"}
        flat = json.dumps(structures["serial"])
        assert all(n in flat for n in names)

    def test_batched_betweenness_structure_identical(self, small_rmat):
        structures = {
            b: _traced_structure(
                brandes, small_rmat, b, sources=np.arange(24), engine="batched"
            )
            for b in BACKENDS
        }
        assert structures["thread"] == structures["serial"]
        assert structures["process"] == structures["serial"]
        flat = json.dumps(structures["serial"])
        for name in ("forward_level", "backward_level"):
            assert name in flat

    def test_pbd_structure_identical(self, two_triangles_bridge):
        structures = {
            b: _traced_structure(
                pbd, two_triangles_bridge, b, max_iterations=4, seed=0
            )
            for b in BACKENDS
        }
        assert structures["thread"] == structures["serial"]
        assert structures["process"] == structures["serial"]

    def test_pool_gauges_process_shm(self, small_rmat):
        tr = Tracer()
        with ParallelContext(2, backend="process", trace=tr) as ctx:
            closeness_centrality(small_rmat, ctx=ctx, trace=tr)
            assert ctx.pool.batch_calls >= 1
            assert ctx.pool.batches_dispatched >= 2
            assert ctx.pool.shm_segments >= 1
            assert ctx.pool.shm_bytes > 0
            assert ctx.pool.busy_seconds > 0.0
            assert 0.0 < ctx.pool.utilization(2) <= 1.0

    def test_pool_gauges_serial_brandes(self, small_rmat):
        # The serial inline path must keep the gauges honest too.
        tr = Tracer()
        with ParallelContext(1, backend="serial", trace=tr) as ctx:
            brandes(small_rmat, ctx=ctx, trace=tr, sources=np.arange(8))
        assert ctx.pool.batch_calls >= 1
        assert ctx.pool.lanes_dispatched >= 8


# ---------------------------------------------------------------------------
# Disabled-tracer overhead
# ---------------------------------------------------------------------------


class TestOverhead:
    def test_noop_tracer_cheap(self, small_rmat):
        """Guard the `if tr:` fast path: untraced through the public API
        must stay within 1.5x of min-of-k (generous; the benchmark gate
        in benchmarks/test_obs_overhead.py holds the real 5% bound)."""

        def once():
            t0 = time.perf_counter()
            closeness_centrality(small_rmat, sources=np.arange(32))
            return time.perf_counter() - t0

        times = [once() for _ in range(5)]
        assert min(times) > 0
        assert current_tracer() is NULL_TRACER


# ---------------------------------------------------------------------------
# run() / RunResult
# ---------------------------------------------------------------------------


class TestRun:
    def test_run_by_name(self, small_rmat, tmp_path):
        res = run("closeness", small_rmat, backend="thread", n_workers=2)
        assert isinstance(res, RunResult)
        assert res.algorithm == "closeness"
        assert res.backend == "thread" and res.n_workers == 2
        assert res.value.shape == (small_rmat.n_vertices,)
        assert res.trace is not None and res.trace.find("closeness")
        assert res.elapsed_seconds > 0
        assert res.pool.batch_calls >= 1
        assert "Q" not in res.summary() and "closeness" in res.summary()
        out = res.save(tmp_path / "run.json")
        doc = json.loads(out.read_text())
        assert doc["algorithm"] == "closeness"
        assert doc["trace"]["name"] == "trace"
        assert "parallel_work" in doc["cost_model"]
        assert doc["pool"]["batch_calls"] >= 1

    def test_run_callable_and_operands(self, small_rmat):
        res = run(repro.bfs, small_rmat, 0, trace=True)
        assert res.algorithm == "bfs"
        assert res.trace.find("level")

    def test_run_trace_false(self, small_rmat):
        res = run("degree", small_rmat, trace=False)
        assert res.trace is None
        assert res.flame() == "(tracing disabled)"
        assert res.to_dict()["trace"] is None

    def test_run_unknown_name(self, small_rmat):
        with pytest.raises(KeyError, match="unknown algorithm"):
            run("nope", small_rmat)

    def test_flame_output(self, small_rmat):
        res = run("betweenness", small_rmat)
        text = res.flame()
        assert "brandes" in text and "forward_level" in text
        assert flame_summary(res.trace, max_depth=2)
