"""The prefix-differential harness: green on truth, red on planted bugs.

Tier-1 runs the harness over a bounded corpus slice and proves each
planted fault is (a) detected, (b) shrunk to a small minimal event
list, and (c) reproducible from the saved ``.events`` artifact.  The
full corpus x analytics sweep is behind the ``stream_full`` marker.
"""

from __future__ import annotations

import pytest

from repro.dynamic import read_events
from repro.qa import (
    PREFIX_FAULTS,
    check_events,
    run_prefix_differential,
    shrink_events,
)
from repro.qa.prefix import event_stream
from repro.qa.differential import corpus


# Smallest corpus prefix on which each fault's trigger condition can
# fire: cc faults fire anywhere, triangle faults need a graph with
# triangles (complete_6 at index 6), degree drift needs max degree >= 3
# (star_9 at index 7).
_FAULT_GRAPHS = {
    "cc_skip_union": 6,
    "degree_drift": 8,
    "tri_double": 12,
}


class TestHarnessGreen:
    def test_clean_run_over_corpus_slice(self, tmp_path):
        report = run_prefix_differential(
            seed=0, n_graphs=10, artifact_dir=tmp_path
        )
        assert report.ok, report.summary()
        assert report.n_graphs == 10
        assert report.n_batches > 0
        assert not list(tmp_path.glob("*.events"))

    def test_check_events_accepts_direct_streams(self):
        item = corpus(seed=0, n_graphs=8)[7]
        n, events = event_stream(item, 0, policy="bfs")
        detail, check, n_batches = check_events(n, events)
        assert detail is None and check is None
        assert n_batches >= 1


class TestPlantedFaults:
    @pytest.mark.parametrize("fault", sorted(PREFIX_FAULTS))
    def test_fault_detected_shrunk_and_replayable(self, fault, tmp_path):
        expect_check, fault_fn = PREFIX_FAULTS[fault]
        report = run_prefix_differential(
            seed=0,
            n_graphs=_FAULT_GRAPHS[fault],
            fault=fault,
            artifact_dir=tmp_path,
        )
        assert not report.ok, f"fault {fault!r} escaped the harness"
        failure = report.failures[0]
        assert failure.check == expect_check
        # shrinking produced a strictly smaller reproducer
        assert failure.minimal is not None
        assert 1 <= len(failure.minimal) <= len(failure.events)
        assert len(failure.minimal) <= 8, (
            f"minimal reproducer unexpectedly large: {len(failure.minimal)}"
        )
        # the artifact replays: failing with the fault, clean without
        assert failure.artifact is not None and failure.artifact.exists()
        n, events = read_events(failure.artifact)
        detail, _, _ = check_events(
            n, events, analytics=(expect_check,), fault_fn=fault_fn
        )
        assert detail is not None
        detail, _, _ = check_events(n, events, analytics=(expect_check,))
        assert detail is None

    def test_shrink_is_minimal_fixed_point(self):
        # Greedy 1-removal minimality: removing any single event from
        # the shrunk list makes the predicate pass.
        expect_check, fault_fn = PREFIX_FAULTS["cc_skip_union"]
        report = run_prefix_differential(
            seed=0, n_graphs=6, fault="cc_skip_union",
            artifact_dir=None, shrink_failures=True,
        )
        failure = report.failures[0]
        minimal = failure.minimal

        def fails(evs):
            if not evs:
                return False
            d, _, _ = check_events(
                failure.n_vertices, evs,
                analytics=(expect_check,), fault_fn=fault_fn,
            )
            return d is not None

        assert fails(minimal)
        again = shrink_events(minimal, fails)
        assert len(again) == len(minimal)


@pytest.mark.stream_full
class TestFullCorpus:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_full_corpus_green(self, seed, tmp_path):
        report = run_prefix_differential(
            seed=seed, n_graphs=24, artifact_dir=tmp_path
        )
        assert report.ok, report.summary()
