"""Tests for centrality metrics against networkx oracles."""

from __future__ import annotations

import numpy as np
import pytest

import networkx as nx

from repro.errors import GraphStructureError
from repro.graph import from_edge_list, from_networkx, to_networkx
from repro.centrality import (
    degree_centrality,
    closeness_centrality,
    betweenness_centrality,
    edge_betweenness_centrality,
    brandes,
    approximate_vertex_betweenness,
    sampled_betweenness,
)
from repro.parallel import ParallelContext

from tests.conftest import random_gnm


@pytest.fixture(scope="module")
def karate():
    gx = nx.karate_club_graph()
    plain = nx.Graph()
    plain.add_nodes_from(range(gx.number_of_nodes()))
    plain.add_edges_from(gx.edges())
    return from_networkx(plain)


class TestDegreeCentrality:
    def test_normalized_matches_networkx(self, karate):
        ref = nx.degree_centrality(nx.karate_club_graph())
        mine = degree_centrality(karate)
        for v, x in ref.items():
            assert mine[v] == pytest.approx(x)

    def test_unnormalized_is_degree(self, karate):
        assert np.array_equal(
            degree_centrality(karate, normalized=False), karate.degrees()
        )

    def test_edge_mask(self, triangle_plus_tail):
        view = triangle_plus_tail.view()
        u, v = triangle_plus_tail.edge_endpoints()
        eid = next(
            i
            for i in range(triangle_plus_tail.n_edges)
            if {int(u[i]), int(v[i])} == {2, 3}
        )
        view.deactivate(eid)
        deg = degree_centrality(view, normalized=False)
        assert deg[3] == 0
        assert deg[2] == 2


class TestCloseness:
    def test_matches_networkx_connected(self, karate):
        ref = nx.closeness_centrality(nx.karate_club_graph())
        mine = closeness_centrality(karate)
        for v, x in ref.items():
            assert mine[v] == pytest.approx(x)

    def test_matches_networkx_disconnected(self, disconnected_graph):
        gx = to_networkx(disconnected_graph)
        ref = nx.closeness_centrality(gx)
        mine = closeness_centrality(disconnected_graph)
        for v, x in ref.items():
            assert mine[v] == pytest.approx(x)

    def test_weighted(self, weighted_graph):
        gx = to_networkx(weighted_graph)
        ref = nx.closeness_centrality(gx, distance="weight")
        mine = closeness_centrality(weighted_graph)
        for v, x in ref.items():
            assert mine[v] == pytest.approx(x)

    def test_isolated_vertex_zero(self):
        g = from_edge_list([(0, 1)], n_vertices=3)
        assert closeness_centrality(g)[2] == 0.0

    def test_directed_matches_networkx(self):
        gx = nx.gn_graph(25, seed=5)
        from repro.graph import from_networkx

        g = from_networkx(gx)
        ref = nx.closeness_centrality(gx)
        mine = closeness_centrality(g)
        for v, x in ref.items():
            assert mine[v] == pytest.approx(x)

    def test_sources_subset(self, karate):
        full = closeness_centrality(karate)
        some = closeness_centrality(karate, sources=[0, 5])
        assert some[0] == pytest.approx(full[0])
        assert some[5] == pytest.approx(full[5])
        assert some[1] == 0.0


class TestBetweenness:
    def test_vertex_matches_networkx(self, karate):
        ref = nx.betweenness_centrality(nx.karate_club_graph(), normalized=False)
        mine = betweenness_centrality(karate)
        for v, x in ref.items():
            assert mine[v] == pytest.approx(x)

    def test_vertex_normalized_matches(self, karate):
        ref = nx.betweenness_centrality(nx.karate_club_graph(), normalized=True)
        mine = betweenness_centrality(karate, normalized=True)
        for v, x in ref.items():
            assert mine[v] == pytest.approx(x)

    def test_edge_matches_networkx(self, karate):
        ref = nx.edge_betweenness_centrality(
            nx.karate_club_graph(), normalized=False
        )
        mine = edge_betweenness_centrality(karate)
        u, v = karate.edge_endpoints()
        for eid in range(karate.n_edges):
            key = (int(u[eid]), int(v[eid]))
            expect = ref.get(key, ref.get((key[1], key[0])))
            assert mine[eid] == pytest.approx(expect)

    def test_random_graph_matches(self):
        g = random_gnm(50, 120, seed=19)
        gx = to_networkx(g)
        ref = nx.betweenness_centrality(gx, normalized=False)
        mine = betweenness_centrality(g)
        for v, x in ref.items():
            assert mine[v] == pytest.approx(x)

    def test_coarse_equals_fine(self, karate):
        fine = brandes(karate, granularity="fine")
        coarse = brandes(karate, granularity="coarse")
        assert np.allclose(fine.vertex, coarse.vertex)
        assert np.allclose(fine.edge, coarse.edge)

    def test_coarse_scales_better_in_model(self, karate):
        ctx_f = ParallelContext(16)
        brandes(karate, granularity="fine", ctx=ctx_f)
        ctx_c = ParallelContext(16)
        brandes(karate, granularity="coarse", ctx=ctx_c)
        assert ctx_c.speedup(16) >= ctx_f.speedup(16)

    def test_path_graph_analytic(self):
        # path 0-1-2-3: BC(1) = BC(2) = 2 (pairs (0,2),(0,3) / (1,3),(0,3))
        g = from_edge_list([(0, 1), (1, 2), (2, 3)])
        bc = betweenness_centrality(g)
        assert bc.tolist() == [0.0, 2.0, 2.0, 0.0]

    def test_star_graph_analytic(self):
        g = from_edge_list([(0, i) for i in range(1, 6)])
        bc = betweenness_centrality(g)
        assert bc[0] == pytest.approx(10.0)  # C(5,2) pairs
        assert np.allclose(bc[1:], 0.0)

    def test_edge_mask_changes_scores(self, two_triangles_bridge):
        g = two_triangles_bridge
        full = edge_betweenness_centrality(g)
        view = g.view()
        u, v = g.edge_endpoints()
        eid01 = next(
            i for i in range(g.n_edges) if {int(u[i]), int(v[i])} == {0, 1}
        )
        view.deactivate(eid01)
        masked = edge_betweenness_centrality(view)
        assert masked[eid01] == 0.0
        assert not np.allclose(full, masked)

    def test_sources_subset_partial_sums(self, karate):
        all_src = brandes(karate).vertex
        half1 = brandes(karate, sources=range(0, 17)).vertex
        half2 = brandes(karate, sources=range(17, 34)).vertex
        assert np.allclose(all_src, half1 + half2)

    def test_directed_rejected(self):
        g = from_edge_list([(0, 1)], directed=True)
        with pytest.raises(GraphStructureError):
            betweenness_centrality(g)

    def test_bad_granularity(self, karate):
        with pytest.raises(ValueError):
            brandes(karate, granularity="medium")


class TestWeightedBetweenness:
    def _weighted(self, seed=3):
        from repro.graph import from_edge_array

        g = random_gnm(40, 120, seed=seed)
        rng = np.random.default_rng(seed)
        u, v = g.edge_endpoints()
        w = rng.uniform(0.5, 3.0, g.n_edges)
        return from_edge_array(40, u, v, weights=w, directed=False, dedupe=False)

    def test_vertex_matches_networkx(self):
        g = self._weighted()
        ref = nx.betweenness_centrality(
            to_networkx(g), normalized=False, weight="weight"
        )
        mine = brandes(g).vertex
        for v, x in ref.items():
            assert mine[v] == pytest.approx(x)

    def test_edge_matches_networkx(self):
        g = self._weighted(seed=7)
        ref = nx.edge_betweenness_centrality(
            to_networkx(g), normalized=False, weight="weight"
        )
        mine = brandes(g).edge
        u, v = g.edge_endpoints()
        for e in range(g.n_edges):
            key = (int(u[e]), int(v[e]))
            expect = ref.get(key, ref.get((key[1], key[0])))
            assert mine[e] == pytest.approx(expect)

    def test_force_hop_metric(self):
        g = self._weighted()
        hops = brandes(g, weights="hops").vertex
        ref = nx.betweenness_centrality(to_networkx(g), normalized=False)
        for v, x in ref.items():
            assert hops[v] == pytest.approx(x)

    def test_unit_weights_dispatch_to_bfs(self):
        from repro.graph import from_edge_array

        g0 = random_gnm(30, 70, seed=9)
        u, v = g0.edge_endpoints()
        g1 = from_edge_array(
            30, u, v, weights=np.ones(g0.n_edges), directed=False, dedupe=False
        )
        assert np.allclose(brandes(g0).vertex, brandes(g1).vertex)

    def test_bad_weights_arg(self, karate):
        with pytest.raises(ValueError):
            brandes(karate, weights="furlongs")


class TestApproximateBetweenness:
    def test_full_sampling_is_exact(self, karate):
        vbc, ebc = sampled_betweenness(karate, sample_fraction=1.0)
        assert np.allclose(vbc, betweenness_centrality(karate))
        assert np.allclose(ebc, edge_betweenness_centrality(karate))

    def test_sampling_ranks_top_edge_well(self):
        g = random_gnm(120, 360, seed=29)
        exact = edge_betweenness_centrality(g)
        _, approx = sampled_betweenness(
            g, sample_fraction=0.25, rng=np.random.default_rng(1)
        )
        # paper's claim: top-centrality entities are estimated well —
        # the approximate top edge must be in the exact top 5%.
        top = int(np.argmax(approx))
        cutoff = np.quantile(exact, 0.95)
        assert exact[top] >= cutoff

    def test_adaptive_stops_early_on_hub(self):
        g = from_edge_list([(0, i) for i in range(1, 40)])
        res = approximate_vertex_betweenness(g, 0, c=2.0)
        assert res.stopped_early
        assert res.n_samples < 40
        exact = betweenness_centrality(g)[0]
        assert res.estimate == pytest.approx(exact, rel=0.35)

    def test_adaptive_peripheral_vertex_exhausts(self):
        g = from_edge_list([(0, i) for i in range(1, 10)])
        res = approximate_vertex_betweenness(g, 3, c=5.0)
        assert not res.stopped_early
        assert res.estimate == pytest.approx(0.0)

    def test_invalid_params(self, karate):
        with pytest.raises(ValueError):
            sampled_betweenness(karate, sample_fraction=0.0)
        with pytest.raises(ValueError):
            approximate_vertex_betweenness(karate, 0, c=0.0)
        with pytest.raises(GraphStructureError):
            approximate_vertex_betweenness(karate, 99)
