"""Tests for BFS, connected components, and st-connectivity kernels."""

from __future__ import annotations

import numpy as np
import pytest

import networkx as nx

from repro.errors import GraphStructureError
from repro.graph import from_edge_list, from_networkx, to_networkx
from repro.kernels import (
    bfs,
    bfs_distances,
    connected_components,
    component_sizes,
    largest_component,
    st_connectivity,
)
from repro.parallel import ParallelContext

from tests.conftest import random_gnm


class TestBFS:
    def test_distances_small(self, triangle_plus_tail):
        res = bfs(triangle_plus_tail, 0)
        assert res.distances.tolist() == [0, 1, 1, 2]
        assert res.n_levels == 2

    def test_parents_form_tree(self, two_triangles_bridge):
        res = bfs(two_triangles_bridge, 0)
        for v in range(6):
            if v == 0:
                assert res.parents[v] == 0
            else:
                p = int(res.parents[v])
                assert res.distances[p] == res.distances[v] - 1
                assert two_triangles_bridge.has_edge(p, v)

    def test_unreached_marked(self, disconnected_graph):
        res = bfs(disconnected_graph, 0)
        assert res.distances[3] == -1
        assert res.distances[5] == -1
        assert res.n_reached == 3

    def test_max_depth(self, triangle_plus_tail):
        res = bfs(triangle_plus_tail, 0, max_depth=1)
        assert res.distances.tolist() == [0, 1, 1, -1]

    def test_source_out_of_range(self, triangle_plus_tail):
        with pytest.raises(GraphStructureError):
            bfs(triangle_plus_tail, 10)

    def test_against_networkx_random(self):
        g = random_gnm(120, 300, seed=11)
        gx = to_networkx(g)
        mine = bfs_distances(g, 0)
        ref = nx.single_source_shortest_path_length(gx, 0)
        for v in range(120):
            assert mine[v] == ref.get(v, -1)

    def test_directed_bfs(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0), (3, 0)], directed=True)
        d = bfs_distances(g, 0)
        assert d.tolist() == [0, 1, 2, -1]

    def test_edge_mask_respected(self, two_triangles_bridge):
        g = two_triangles_bridge
        view = g.view()
        u, v = g.edge_endpoints()
        bridge = next(
            i for i in range(g.n_edges) if {int(u[i]), int(v[i])} == {2, 3}
        )
        view.deactivate(bridge)
        d = bfs_distances(view, 0)
        assert (d[:3] >= 0).all()
        assert (d[3:] == -1).all()

    def test_deterministic_parents(self):
        g = random_gnm(60, 150, seed=5)
        r1 = bfs(g, 3)
        r2 = bfs(g, 3)
        assert np.array_equal(r1.parents, r2.parents)

    def test_records_phases(self, two_triangles_bridge):
        ctx = ParallelContext(4)
        bfs(two_triangles_bridge, 0, ctx=ctx)
        assert ctx.cost.parallel_work > 0
        assert ctx.cost.n_barriers >= 1

    def test_single_vertex(self):
        g = from_edge_list([], n_vertices=1)
        res = bfs(g, 0)
        assert res.distances.tolist() == [0]


class TestConnectedComponents:
    @pytest.mark.parametrize("method", ["sv", "bfs"])
    def test_disconnected(self, disconnected_graph, method):
        labels = connected_components(disconnected_graph, method=method)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert labels[5] not in (labels[0], labels[3])

    @pytest.mark.parametrize("method", ["sv", "bfs"])
    def test_labels_are_min_vertex(self, disconnected_graph, method):
        labels = connected_components(disconnected_graph, method=method)
        assert labels.tolist() == [0, 0, 0, 3, 3, 5]

    def test_methods_agree_random(self):
        g = random_gnm(80, 90, seed=13)
        a = connected_components(g, method="sv")
        b = connected_components(g, method="bfs")
        assert np.array_equal(a, b)

    def test_against_networkx(self):
        g = random_gnm(100, 110, seed=17)
        gx = to_networkx(g)
        labels = connected_components(g)
        ref_comps = list(nx.connected_components(gx))
        assert len(set(labels.tolist())) == len(ref_comps)
        for comp in ref_comps:
            ls = {int(labels[v]) for v in comp}
            assert len(ls) == 1

    def test_directed_weak_components(self):
        g = from_edge_list([(0, 1), (2, 1)], directed=True)
        labels = connected_components(g)
        assert labels[0] == labels[1] == labels[2]

    def test_component_sizes(self, disconnected_graph):
        labels = connected_components(disconnected_graph)
        assert component_sizes(labels) == {0: 3, 3: 2, 5: 1}

    def test_largest_component(self, disconnected_graph):
        assert largest_component(disconnected_graph).tolist() == [0, 1, 2]

    def test_edge_mask_splits_component(self, two_triangles_bridge):
        g = two_triangles_bridge
        view = g.view()
        u, v = g.edge_endpoints()
        bridge = next(
            i for i in range(g.n_edges) if {int(u[i]), int(v[i])} == {2, 3}
        )
        before = len(set(connected_components(view).tolist()))
        view.deactivate(bridge)
        after = len(set(connected_components(view).tolist()))
        assert before == 1 and after == 2

    def test_unknown_method_rejected(self, triangle_plus_tail):
        with pytest.raises(ValueError):
            connected_components(triangle_plus_tail, method="magic")

    def test_empty_graph(self):
        g = from_edge_list([], n_vertices=0)
        assert connected_components(g).shape[0] == 0


class TestStConnectivity:
    def test_connected_pair(self, two_triangles_bridge):
        assert st_connectivity(two_triangles_bridge, 0, 5)

    def test_disconnected_pair(self, disconnected_graph):
        assert not st_connectivity(disconnected_graph, 0, 4)

    def test_same_vertex(self, triangle_plus_tail):
        assert st_connectivity(triangle_plus_tail, 1, 1)

    def test_directed_asymmetry(self):
        g = from_edge_list([(0, 1), (1, 2)], directed=True)
        assert st_connectivity(g, 0, 2)
        assert not st_connectivity(g, 2, 0)

    def test_matches_bfs_random(self):
        g = random_gnm(70, 80, seed=23)
        d = bfs_distances(g, 0)
        for t in range(0, 70, 7):
            assert st_connectivity(g, 0, t) == (d[t] >= 0)

    def test_respects_edge_mask(self, two_triangles_bridge):
        g = two_triangles_bridge
        view = g.view()
        u, v = g.edge_endpoints()
        bridge = next(
            i for i in range(g.n_edges) if {int(u[i]), int(v[i])} == {2, 3}
        )
        view.deactivate(bridge)
        assert not st_connectivity(view, 0, 5)
