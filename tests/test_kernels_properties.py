"""Hypothesis property tests for the traversal and spanning kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import from_edge_array
from repro.kernels import (
    bfs,
    boruvka_msf,
    connected_components,
    delta_stepping,
    dijkstra,
    kruskal_msf,
    spanning_forest,
    st_connectivity,
)
from repro.kernels.mst import forest_weight
from repro.kernels.spanning import tree_edges


def _graph(edges, n=14, weights=None):
    src = np.asarray([e[0] for e in edges], dtype=np.int64)
    dst = np.asarray([e[1] for e in edges], dtype=np.int64)
    return from_edge_array(n, src, dst, weights=weights, directed=False)


edge_lists = st.lists(
    st.tuples(st.integers(0, 13), st.integers(0, 13)),
    min_size=0,
    max_size=50,
)


@given(edge_lists, st.integers(0, 13))
@settings(max_examples=60, deadline=None)
def test_bfs_distance_is_shortest(edges, source):
    """BFS distance satisfies the edge relaxation inequality tightly."""
    g = _graph(edges)
    d = bfs(g, source).distances
    assert d[source] == 0
    u, v = g.edge_endpoints()
    for i in range(g.n_edges):
        a, b = int(u[i]), int(v[i])
        if d[a] >= 0 and d[b] >= 0:
            assert abs(d[a] - d[b]) <= 1
        else:
            # an edge cannot connect reached and unreached vertices
            assert (d[a] >= 0) == (d[b] >= 0)


@given(edge_lists, st.integers(0, 13))
@settings(max_examples=50, deadline=None)
def test_bfs_parent_distances_decrease(edges, source):
    g = _graph(edges)
    res = bfs(g, source)
    for v in range(14):
        if res.distances[v] > 0:
            p = int(res.parents[v])
            assert res.distances[p] == res.distances[v] - 1


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_components_are_bfs_closures(edges):
    g = _graph(edges)
    labels = connected_components(g)
    for v in range(14):
        reached = bfs(g, v).reached
        assert (labels[reached] == labels[v]).all()
        assert not np.any(labels[~reached] == labels[v])


@given(edge_lists, st.integers(0, 13), st.integers(0, 13))
@settings(max_examples=60, deadline=None)
def test_st_connectivity_matches_components(edges, s, t):
    g = _graph(edges)
    labels = connected_components(g)
    assert st_connectivity(g, s, t) == (labels[s] == labels[t])


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_spanning_forest_size_invariant(edges):
    """#tree edges == n − #components, and all tree edges exist."""
    g = _graph(edges)
    labels = connected_components(g)
    n_comp = np.unique(labels).shape[0]
    parent = spanning_forest(g)
    te = tree_edges(parent)
    assert te.shape[0] == 14 - n_comp
    for child, par in te:
        assert g.has_edge(int(child), int(par))


weighted_edges = st.lists(
    st.tuples(
        st.integers(0, 13),
        st.integers(0, 13),
        st.floats(0.1, 10.0, allow_nan=False),
    ),
    min_size=0,
    max_size=50,
)


@given(weighted_edges)
@settings(max_examples=40, deadline=None)
def test_msf_engines_agree(edges):
    g = _graph(
        [(u, v) for u, v, _ in edges],
        weights=np.asarray([w for _, _, w in edges]),
    )
    wb = forest_weight(g, boruvka_msf(g))
    wk = forest_weight(g, kruskal_msf(g))
    assert wb == pytest.approx(wk)


@given(weighted_edges, st.integers(0, 13))
@settings(max_examples=40, deadline=None)
def test_sssp_engines_agree(edges, source):
    g = _graph(
        [(u, v) for u, v, _ in edges],
        weights=np.asarray([w for _, _, w in edges]),
    )
    a = delta_stepping(g, source).distances
    b = dijkstra(g, source).distances
    assert np.allclose(a, b, equal_nan=True)


@given(weighted_edges, st.integers(0, 13))
@settings(max_examples=40, deadline=None)
def test_sssp_triangle_inequality(edges, source):
    g = _graph(
        [(u, v) for u, v, _ in edges],
        weights=np.asarray([w for _, _, w in edges]),
    )
    d = dijkstra(g, source).distances
    u, v = g.edge_endpoints()
    w = g.edge_weights()
    for i in range(g.n_edges):
        a, b = int(u[i]), int(v[i])
        if np.isfinite(d[a]):
            assert d[b] <= d[a] + w[i] + 1e-9
        if np.isfinite(d[b]):
            assert d[a] <= d[b] + w[i] + 1e-9


@given(edge_lists, st.data())
@settings(max_examples=40, deadline=None)
def test_edge_mask_monotonicity(edges, data):
    """Deleting edges can only disconnect, never connect."""
    g = _graph(edges)
    if g.n_edges == 0:
        return
    view = g.view()
    before = connected_components(view)
    k = data.draw(st.integers(1, g.n_edges))
    drop = data.draw(
        st.lists(
            st.integers(0, g.n_edges - 1), min_size=k, max_size=k, unique=True
        )
    )
    for e in drop:
        view.deactivate(e)
    after = connected_components(view)
    # vertices separated before stay separated after
    for a in range(14):
        for b in range(a + 1, 14):
            if before[a] != before[b]:
                assert after[a] != after[b]
