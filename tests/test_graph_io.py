"""Tests for graph file formats and attribute tables."""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.errors import GraphFormatError, GraphStructureError
from repro.graph import from_edge_list
from repro.graph.attributes import AttributedGraph, AttributeTable
from repro.graph.io import (
    read_edge_list,
    write_edge_list,
    read_metis,
    write_metis,
    read_dimacs,
    write_dimacs,
    save_npz,
    load_npz,
)


@pytest.fixture
def sample(weighted_graph):
    return weighted_graph


def _same_graph(a, b) -> bool:
    if a.n_vertices != b.n_vertices or a.n_edges != b.n_edges:
        return False
    ua, va = a.edge_endpoints()
    ub, vb = b.edge_endpoints()
    ea = sorted(zip(ua.tolist(), va.tolist(), a.edge_weights().tolist()))
    eb = sorted(zip(ub.tolist(), vb.tolist(), b.edge_weights().tolist()))
    return ea == eb


class TestEdgeListFormat:
    def test_roundtrip(self, sample, tmp_path):
        p = tmp_path / "g.txt"
        write_edge_list(sample, p)
        g = read_edge_list(p)
        assert _same_graph(sample, g)

    def test_roundtrip_unweighted(self, triangle_plus_tail, tmp_path):
        p = tmp_path / "g.txt"
        write_edge_list(triangle_plus_tail, p)
        g = read_edge_list(p)
        assert not g.is_weighted
        assert _same_graph(triangle_plus_tail, g)

    def test_comments_and_blank_lines(self):
        text = "# header\n\n0 1\n% other comment\n1 2\n"
        g = read_edge_list(io.StringIO(text))
        assert g.n_edges == 2

    def test_bad_line(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("0\n"))
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("a b\n"))

    def test_inconsistent_weights(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("0 1 2.0\n1 2\n"))

    def test_directed(self):
        g = read_edge_list(io.StringIO("0 1\n1 0\n"), directed=True)
        assert g.n_edges == 2

    def test_explicit_n_vertices(self):
        g = read_edge_list(io.StringIO("0 1\n"), n_vertices=10)
        assert g.n_vertices == 10


class TestMetisFormat:
    def test_roundtrip(self, sample, tmp_path):
        p = tmp_path / "g.graph"
        write_metis(sample, p)
        g = read_metis(p)
        assert _same_graph(sample, g)

    def test_roundtrip_unweighted(self, two_triangles_bridge, tmp_path):
        p = tmp_path / "g.graph"
        write_metis(two_triangles_bridge, p)
        g = read_metis(p)
        assert _same_graph(two_triangles_bridge, g)

    def test_isolated_vertices_roundtrip(self):
        # Regression: blank body lines are the adjacency of isolated
        # vertices; the reader used to discard them and then reject the
        # file for having too few vertex lines.
        g = from_edge_list([(1, 2)], n_vertices=5)  # 0, 3, 4 isolated
        buf = io.StringIO()
        write_metis(g, buf)
        buf.seek(0)
        back = read_metis(buf)
        assert back.n_vertices == 5
        assert _same_graph(g, back)

    def test_header_mismatch_detected(self):
        with pytest.raises(GraphFormatError):
            read_metis(io.StringIO("2 5\n2\n1\n"))  # claims 5 edges, has 1

    def test_vertex_count_mismatch(self):
        with pytest.raises(GraphFormatError):
            read_metis(io.StringIO("3 1\n2\n1\n"))  # only 2 vertex lines

    def test_neighbor_out_of_range(self):
        with pytest.raises(GraphFormatError):
            read_metis(io.StringIO("2 1\n5\n1\n"))

    def test_directed_write_rejected(self):
        g = from_edge_list([(0, 1)], directed=True)
        with pytest.raises(GraphFormatError):
            write_metis(g, io.StringIO())

    def test_empty_file(self):
        with pytest.raises(GraphFormatError):
            read_metis(io.StringIO(""))


class TestDimacsFormat:
    def test_roundtrip_directed(self, tmp_path):
        g0 = from_edge_list([(0, 1, 3.0), (1, 2, 4.0)], directed=True)
        p = tmp_path / "g.gr"
        write_dimacs(g0, p)
        g = read_dimacs(p)
        assert _same_graph(g0, g)

    def test_roundtrip_undirected(self, sample, tmp_path):
        p = tmp_path / "g.gr"
        write_dimacs(sample, p)
        g = read_dimacs(p, directed=True)
        # undirected graphs serialize both arcs
        assert g.n_edges == 2 * sample.n_edges

    def test_missing_problem_line(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("a 1 2 3\n"))

    def test_comments_skipped(self):
        g = read_dimacs(io.StringIO("c hi\np sp 3 1\na 1 2 5\n"))
        assert g.n_edges == 1
        assert g.edge_weight(0, 1) == 5.0


class TestNpzFormat:
    def test_roundtrip(self, sample, tmp_path):
        p = tmp_path / "g.npz"
        save_npz(sample, p)
        g = load_npz(p)
        assert _same_graph(sample, g)
        assert np.array_equal(g.arc_edge_ids, sample.arc_edge_ids)

    def test_roundtrip_directed(self, tmp_path):
        g0 = from_edge_list([(0, 1), (2, 1)], directed=True)
        p = tmp_path / "g.npz"
        save_npz(g0, p)
        g = load_npz(p)
        assert g.directed
        assert _same_graph(g0, g)


class TestRoundTripProperties:
    """Hypothesis: write→read is the identity for every text format."""

    weighted_edges = st.lists(
        st.tuples(
            st.integers(0, 11),
            st.integers(0, 11),
            st.floats(
                min_value=1e-3,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
        ),
        min_size=1,
        max_size=40,
    )

    @staticmethod
    def _build(edges, directed=False):
        kept = [(u, v, w) for u, v, w in edges if u != v]
        if not kept:
            kept = [(0, 1, 0.125)]
        return from_edge_list(kept, n_vertices=12, directed=directed)

    @given(weighted_edges)
    @hyp_settings(max_examples=40, deadline=None)
    def test_edge_list_roundtrip_exact(self, edges):
        g = self._build(edges)
        buf = io.StringIO()
        write_edge_list(g, buf)
        buf.seek(0)
        assert _same_graph(g, read_edge_list(buf, n_vertices=12))

    @given(weighted_edges)
    @hyp_settings(max_examples=40, deadline=None)
    def test_metis_roundtrip_exact(self, edges):
        g = self._build(edges)
        buf = io.StringIO()
        write_metis(g, buf)
        buf.seek(0)
        assert _same_graph(g, read_metis(buf))

    @given(weighted_edges)
    @hyp_settings(max_examples=40, deadline=None)
    def test_dimacs_roundtrip_exact_directed(self, edges):
        g = self._build(edges, directed=True)
        buf = io.StringIO()
        write_dimacs(g, buf)
        buf.seek(0)
        assert _same_graph(g, read_dimacs(buf, directed=True))

    def test_weight_precision_survives_roundtrip(self):
        # Regression: ':g' formatting used to truncate weights to 6
        # significant digits, so 1/3 came back as 0.333333.
        w = 1.0 / 3.0
        g = from_edge_list([(0, 1, w), (1, 2, 1e-12 + 1.0)])
        buf = io.StringIO()
        write_edge_list(g, buf)
        buf.seek(0)
        back = read_edge_list(buf)
        assert back.edge_weight(0, 1) == w
        assert back.edge_weight(1, 2) == 1e-12 + 1.0


class TestAttributeTable:
    def test_numeric_column(self):
        t = AttributeTable(4)
        t.add_column("score", [1.0, 2.0, 3.0, 4.0])
        assert t.get("score", 2) == 3.0
        t.set("score", 2, 9.0)
        assert t.get("score", 2) == 9.0

    def test_object_column(self):
        t = AttributeTable(3)
        t.add_column("kind", ["protein", "gene", "protein"])
        assert t.get("kind", 0) == "protein"

    def test_fill_column(self):
        t = AttributeTable(3)
        t.add_column("flag", fill=False)
        assert not t.get("flag", 1)

    def test_select(self):
        t = AttributeTable(4)
        t.add_column("x", [10, 20, 30, 40])
        sel = t.select("x", np.asarray([True, False, True, False]))
        assert list(sel) == [10, 30]

    def test_duplicate_and_missing(self):
        t = AttributeTable(2)
        t.add_column("a", [1, 2])
        with pytest.raises(GraphStructureError):
            t.add_column("a", [3, 4])
        with pytest.raises(GraphStructureError):
            t.column("b")
        t.drop_column("a")
        with pytest.raises(GraphStructureError):
            t.drop_column("a")

    def test_length_mismatch(self):
        t = AttributeTable(2)
        with pytest.raises(GraphStructureError):
            t.add_column("a", [1, 2, 3])

    def test_index_bounds(self):
        t = AttributeTable(2)
        t.add_column("a", [1, 2])
        with pytest.raises(GraphStructureError):
            t.get("a", 5)

    def test_as_dict(self):
        t = AttributeTable(1)
        t.add_column("a", [1])
        t.add_column("b", ["x"])
        assert t.as_dict(0) == {"a": 1, "b": "x"}


class TestAttributedGraph:
    def test_vertices_where(self, triangle_plus_tail):
        ag = AttributedGraph(
            triangle_plus_tail,
            vertex_attrs={"type": ["a", "b", "a", "b"]},
            edge_attrs={"kind": ["x"] * 4},
        )
        assert ag.vertices_where("type", "a").tolist() == [0, 2]
        assert len(ag.edge_attributes) == 4
