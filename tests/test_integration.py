"""Integration tests: full pipelines across subsystems."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro import community, generators, kernels, metrics
from repro.centrality import sampled_betweenness
from repro.datasets import karate_club, load_surrogate
from repro.graph import DynamicGraph, from_edge_list
from repro.graph.builder import induced_subgraph
from repro.graph.io import read_metis, write_metis
from repro.parallel import ParallelContext
from repro.partitioning import edge_cut, multilevel_kway, partition_balance


class TestGenerateAnalyzeCluster:
    """The paper's exploratory workflow, end to end."""

    def test_planted_partition_pipeline(self):
        pp = generators.planted_partition(
            [40] * 5, 0.35, 0.01, rng=np.random.default_rng(0)
        )
        g = pp.graph
        report = metrics.preprocess(g)
        assert report.n_components == 1
        assert report.pronounced_community_structure
        result = community.pla(g, rng=np.random.default_rng(1))
        # recovered partition must align with the planted one:
        # most planted blocks map to a single found cluster
        agreement = 0
        for b in range(5):
            found = result.labels[pp.labels == b]
            agreement += np.max(np.bincount(found)) / found.shape[0]
        assert agreement / 5 > 0.8

    def test_rmat_pipeline_with_context(self):
        g = generators.rmat(9, 6.0, rng=np.random.default_rng(2))
        ctx = ParallelContext(16)
        report = metrics.preprocess(g, ctx=ctx)
        assert ctx.cost.total_work > 0
        result = community.pma(g, ctx=ctx)
        assert result.modularity > 0.1
        assert ctx.cost.speedup(16) > 1.0

    def test_directed_surrogate_clustering(self):
        g = load_surrogate("Citations", scale=0.01, rng=np.random.default_rng(3))
        und = g.as_undirected()
        core, ids = induced_subgraph(und, kernels.largest_component(und))
        assert core.n_vertices <= und.n_vertices
        r = community.pla(core, rng=np.random.default_rng(0))
        assert r.labels.shape[0] == core.n_vertices

    def test_karate_all_algorithms_agree_on_structure(self):
        g = karate_club()
        results = {
            "pla": community.pla(g, rng=np.random.default_rng(0)),
            "pma": community.pma(g),
            "pbd": community.pbd(g, rng=np.random.default_rng(0)),
            "gn": community.girvan_newman(g),
            "cnm": community.cnm(g),
        }
        for name, r in results.items():
            assert r.modularity > 0.3, f"{name} failed on karate"
            assert 2 <= r.n_clusters <= 8, name


class TestRoundTripThroughFormats:
    def test_generate_save_load_analyze(self, tmp_path):
        g0 = generators.watts_strogatz(200, 6, 0.1, rng=np.random.default_rng(4))
        buf = io.StringIO()
        write_metis(g0, buf)
        buf.seek(0)
        g1 = read_metis(buf)
        assert g1.n_edges == g0.n_edges
        assert metrics.average_clustering(g1) == pytest.approx(
            metrics.average_clustering(g0)
        )
        labels0 = kernels.connected_components(g0)
        labels1 = kernels.connected_components(g1)
        assert np.array_equal(labels0, labels1)

    def test_dynamic_to_static_to_clustering(self):
        dyn = DynamicGraph(30)
        rng = np.random.default_rng(5)
        # two dense blobs plus one cross edge
        for block in (range(0, 15), range(15, 30)):
            block = list(block)
            for _ in range(60):
                u, v = rng.choice(block, size=2, replace=False)
                dyn.add_edge(int(u), int(v))
        dyn.add_edge(0, 15)
        g = dyn.to_csr()
        r = community.pma(g)
        assert r.n_clusters >= 2
        assert (r.labels[:15] == r.labels[0]).all()
        assert (r.labels[15:] == r.labels[15]).all()


class TestPartitionThenAnalyze:
    def test_partition_subgraphs_are_analyzable(self):
        g = generators.road_network(500, 6, rng=np.random.default_rng(6))
        parts = multilevel_kway(g, 4)
        assert partition_balance(g, parts, 4) < 1.3
        for p in range(4):
            sub, _ = induced_subgraph(g, np.nonzero(parts == p)[0])
            assert sub.n_vertices > 0
            # each part is mostly internally connected
            labels = kernels.connected_components(sub)
            big = np.bincount(labels[labels >= 0]).max()
            assert big > 0.5 * sub.n_vertices

    def test_cut_consistency_with_compress(self):
        from repro.graph.builder import compress_vertices

        g = generators.gnm_random(120, 500, rng=np.random.default_rng(7))
        parts = multilevel_kway(g, 4)
        cut = edge_cut(g, parts)
        quotient = compress_vertices(g, parts)
        assert quotient.edge_weights().sum() == pytest.approx(cut)


class TestDivisiveConsistency:
    def test_view_deletions_match_fresh_graph(self):
        """Clustering a view with deletions == clustering the rebuilt graph."""
        g = karate_club()
        view = g.view()
        rng = np.random.default_rng(8)
        drop = rng.choice(g.n_edges, size=10, replace=False)
        for e in drop:
            view.deactivate(int(e))
        # rebuild without the deleted edges
        u, v = g.edge_endpoints()
        keep = np.ones(g.n_edges, dtype=bool)
        keep[drop] = False
        rebuilt = from_edge_list(
            list(zip(u[keep].tolist(), v[keep].tolist())), n_vertices=34
        )
        a = kernels.connected_components(view)
        b = kernels.connected_components(rebuilt)
        assert np.array_equal(a, b)
        vbc_a, _ = sampled_betweenness(view, sample_fraction=1.0)
        vbc_b, _ = sampled_betweenness(rebuilt, sample_fraction=1.0)
        assert np.allclose(vbc_a, vbc_b)

    def test_pbd_trace_replay(self):
        g = karate_club()
        r = community.pbd(g, rng=np.random.default_rng(0))
        trace = r.extras["trace"]
        # replaying the deletions reproduces the best partition
        view = g.view()
        for e in trace.deleted_edges[: trace.best_step()]:
            view.deactivate(e)
        labels = kernels.connected_components(view)
        assert community.modularity(g, labels) == pytest.approx(
            trace.best_score
        )
