"""Hypothesis property tests for the graph data structures."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import (
    DynamicGraph,
    HybridAdjacency,
    Treap,
    from_edge_array,
    compress_vertices,
)
from repro.qa.invariants import validate


edge_lists = st.lists(
    st.tuples(st.integers(0, 19), st.integers(0, 19)),
    min_size=0,
    max_size=80,
)


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_csr_degree_sum_equals_arcs(edges):
    src = np.asarray([e[0] for e in edges], dtype=np.int64)
    dst = np.asarray([e[1] for e in edges], dtype=np.int64)
    g = from_edge_array(20, src, dst, directed=False)
    assert int(g.degrees().sum()) == g.n_arcs == 2 * g.n_edges


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_csr_adjacency_symmetry(edges):
    src = np.asarray([e[0] for e in edges], dtype=np.int64)
    dst = np.asarray([e[1] for e in edges], dtype=np.int64)
    g = from_edge_array(20, src, dst, directed=False)
    for u in range(g.n_vertices):
        for v in g.neighbors(u):
            assert g.has_edge(int(v), u)


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_csr_matches_reference_adjacency(edges):
    """CSR adjacency equals a straightforward set-of-sets construction."""
    src = np.asarray([e[0] for e in edges], dtype=np.int64)
    dst = np.asarray([e[1] for e in edges], dtype=np.int64)
    g = from_edge_array(20, src, dst, directed=False)
    ref = [set() for _ in range(20)]
    for u, v in edges:
        if u != v:
            ref[u].add(v)
            ref[v].add(u)
    for u in range(20):
        assert set(g.neighbors(u).tolist()) == ref[u]


@given(edge_lists, st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_compress_preserves_total_weight(edges, k):
    """Contracting vertices preserves total inter-cluster edge weight."""
    src = np.asarray([e[0] for e in edges], dtype=np.int64)
    dst = np.asarray([e[1] for e in edges], dtype=np.int64)
    g = from_edge_array(20, src, dst, directed=False)
    labels = np.arange(20) % k
    c = compress_vertices(g, labels)
    u, v = g.edge_endpoints()
    expected = float(np.count_nonzero(labels[u] != labels[v]))
    assert c.edge_weights().sum() == expected


# ---------------------------------------------------------------------------
# Treap properties
# ---------------------------------------------------------------------------
key_sets = st.lists(st.integers(0, 200), min_size=0, max_size=60)


@given(key_sets)
@settings(max_examples=80, deadline=None)
def test_treap_matches_set_semantics(keys):
    t = Treap(seed=1)
    ref: set[int] = set()
    for k in keys:
        t.insert(k)
        ref.add(k)
    t.check_invariants()
    assert len(t) == len(ref)
    assert list(t) == sorted(ref)
    for k in range(0, 201, 7):
        assert (k in t) == (k in ref)


@given(key_sets, key_sets)
@settings(max_examples=60, deadline=None)
def test_treap_delete(insert_keys, delete_keys):
    t = Treap(seed=2)
    ref: set[int] = set()
    for k in insert_keys:
        t.insert(k)
        ref.add(k)
    for k in delete_keys:
        assert t.delete(k) == (k in ref)
        ref.discard(k)
        t.check_invariants()
    assert list(t) == sorted(ref)


@given(key_sets, st.integers(0, 200))
@settings(max_examples=60, deadline=None)
def test_treap_split_partitions(keys, pivot):
    t = Treap(seed=3)
    for k in keys:
        t.insert(k)
    lo, hi = t.split(pivot)
    lo.check_invariants()
    hi.check_invariants()
    assert all(k < pivot for k in lo)
    assert all(k >= pivot for k in hi)
    assert sorted(set(keys)) == sorted(list(lo) + list(hi))


@given(key_sets, st.integers(0, 200))
@settings(max_examples=40, deadline=None)
def test_treap_split_then_join_roundtrips(keys, pivot):
    t = Treap(seed=4)
    for k in keys:
        t.insert(k)
    expect = sorted(set(keys))
    lo, hi = t.split(pivot)
    joined = lo.join(hi)
    joined.check_invariants()
    assert list(joined) == expect


@given(key_sets, key_sets)
@settings(max_examples=60, deadline=None)
def test_treap_set_algebra(a_keys, b_keys):
    a, b = Treap(seed=5), Treap(seed=6)
    for k in a_keys:
        a.insert(k)
    for k in b_keys:
        b.insert(k)
    sa, sb = set(a_keys), set(b_keys)
    assert list(a.intersection(b)) == sorted(sa & sb)
    assert list(a.difference(b)) == sorted(sa - sb)
    u = a.union(b)
    u.check_invariants()
    assert list(u) == sorted(sa | sb)


# ---------------------------------------------------------------------------
# Dynamic graph / hybrid adjacency properties
# ---------------------------------------------------------------------------
ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "del"]),
        st.integers(0, 11),
        st.integers(0, 11),
    ),
    min_size=0,
    max_size=80,
)


@given(ops, st.booleans())
@settings(max_examples=60, deadline=None)
def test_dynamic_graph_matches_reference(operations, sorted_adj):
    dyn = DynamicGraph(12, sorted_adjacency=sorted_adj)
    ref: set[frozenset] = set()
    for op, u, v in operations:
        if u == v:
            continue
        key = frozenset((u, v))
        if op == "add":
            assert dyn.add_edge(u, v) == (key not in ref)
            ref.add(key)
        else:
            assert dyn.delete_edge(u, v) == (key in ref)
            ref.discard(key)
    assert dyn.n_edges == len(ref)
    for u in range(12):
        expect = sorted(
            next(iter(k - {u})) for k in ref if u in k
        )
        assert sorted(dyn.neighbors(u).tolist()) == expect


@given(ops)
@settings(max_examples=60, deadline=None)
def test_hybrid_adjacency_matches_reference(operations):
    hyb = HybridAdjacency(12, degree_threshold=3)  # force promotions
    ref: set[frozenset] = set()
    for op, u, v in operations:
        if u == v:
            continue
        key = frozenset((u, v))
        if op == "add":
            assert hyb.add_edge(u, v) == (key not in ref)
            ref.add(key)
        else:
            assert hyb.delete_edge(u, v) == (key in ref)
            ref.discard(key)
    assert hyb.n_edges == len(ref)
    for u in range(12):
        expect = sorted(next(iter(k - {u})) for k in ref if u in k)
        assert hyb.neighbors(u).tolist() == expect


@given(ops)
@settings(max_examples=40, deadline=None)
def test_dynamic_to_csr_roundtrip(operations):
    dyn = DynamicGraph(12)
    for op, u, v in operations:
        if u == v:
            continue
        if op == "add":
            dyn.add_edge(u, v)
        else:
            dyn.delete_edge(u, v)
    g = dyn.to_csr()
    assert g.n_edges == dyn.n_edges
    for u in range(12):
        assert g.neighbors(u).tolist() == sorted(dyn.neighbors(u).tolist())


@given(ops)
@settings(max_examples=40, deadline=None)
def test_dynamic_delete_then_reinsert_roundtrips(operations):
    """Deleting every edge and reinserting it restores the same CSR."""
    dyn = DynamicGraph(12)
    for op, u, v in operations:
        if u == v:
            continue
        (dyn.add_edge if op == "add" else dyn.delete_edge)(u, v)
    before = dyn.to_csr()
    edges = list(zip(*[a.tolist() for a in before.edge_endpoints()]))
    for u, v in edges:
        assert dyn.delete_edge(u, v)
    assert dyn.n_edges == 0
    for u, v in reversed(edges):
        assert dyn.add_edge(u, v)
    after = dyn.to_csr()
    assert np.array_equal(before.offsets, after.offsets)
    assert np.array_equal(before.targets, after.targets)
    assert validate(dyn) == []


@given(key_sets, st.integers(2, 6))
@settings(max_examples=40, deadline=None)
def test_hybrid_threshold_crossing_under_churn(keys, threshold):
    """One vertex's degree repeatedly crosses the promote/demote
    threshold; representation state and structure must stay consistent."""
    hyb = HybridAdjacency(202, degree_threshold=threshold)
    ref: set[int] = set()
    for k in keys:
        hyb.add_edge(201, k)
        ref.add(k)
        assert hyb.is_promoted(201) == (len(ref) > threshold)
    assert validate(hyb) == []
    # Drain back below the hysteresis point, then refill.
    for k in sorted(ref):
        hyb.delete_edge(201, k)
    assert hyb.degree(201) == 0
    assert not hyb.is_promoted(201)
    for k in sorted(ref):
        hyb.add_edge(201, k)
    assert hyb.is_promoted(201) == (len(ref) > threshold)
    assert sorted(hyb.neighbors(201).tolist()) == sorted(ref)
    assert validate(hyb) == []


@given(key_sets, key_sets, st.integers(0, 200))
@settings(max_examples=40, deadline=None)
def test_treap_union_of_split_halves(a_keys, b_keys, pivot):
    """union(split(a) parts, b) behaves exactly like set union — the
    structural operations must not lose or duplicate keys."""
    a, b = Treap(seed=7), Treap(seed=8)
    for k in a_keys:
        a.insert(k)
    for k in b_keys:
        b.insert(k)
    lo, hi = a.split(pivot)
    u = lo.union(b).union(hi)
    u.check_invariants()
    assert list(u) == sorted(set(a_keys) | set(b_keys))
    assert u.keys_array().tolist() == list(u)
    assert validate(u) == []
