"""Tests for the partitioning substrate: metrics, FM/k-way refinement,
multilevel (pmetis/kmetis-like) and spectral (Chaco-like) partitioners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConvergenceError, PartitioningError
from repro.generators import grid_graph, gnm_random, rmat, road_network
from repro.graph import from_edge_list
from repro.partitioning import (
    edge_cut,
    partition_balance,
    partition_sizes,
    conductance,
    validate_partition,
    fm_refine_bisection,
    kway_refine,
    multilevel_recursive_bisection,
    multilevel_kway,
    spectral_bisection,
    spectral_kway,
    fiedler_vector,
)


class TestMetrics:
    def test_edge_cut_simple(self, two_triangles_bridge):
        parts = np.asarray([0, 0, 0, 1, 1, 1])
        assert edge_cut(two_triangles_bridge, parts) == 1.0

    def test_edge_cut_weighted(self, weighted_graph):
        parts = np.asarray([0, 0, 1, 1])
        # edges crossing {0,1}/{2,3}: (1,2)=2, (3,0)=4, (0,2)=5, (1,3)=0.5
        assert edge_cut(weighted_graph, parts) == pytest.approx(11.5)

    def test_balance_perfect(self, two_triangles_bridge):
        parts = np.asarray([0, 0, 0, 1, 1, 1])
        assert partition_balance(two_triangles_bridge, parts) == pytest.approx(1.0)

    def test_balance_skewed(self, two_triangles_bridge):
        parts = np.asarray([0, 1, 1, 1, 1, 1])
        assert partition_balance(two_triangles_bridge, parts) == pytest.approx(
            5 / 3
        )

    def test_sizes(self, two_triangles_bridge):
        parts = np.asarray([0, 0, 1, 1, 2, 2])
        assert partition_sizes(two_triangles_bridge, parts).tolist() == [2, 2, 2]

    def test_conductance_bridge_cut(self, two_triangles_bridge):
        mask = np.asarray([True, True, True, False, False, False])
        # cut=1, vol each side = 7
        assert conductance(two_triangles_bridge, mask) == pytest.approx(1 / 7)

    def test_validate_rejects_bad(self, two_triangles_bridge):
        with pytest.raises(PartitioningError):
            validate_partition(two_triangles_bridge, np.zeros(3))
        with pytest.raises(PartitioningError):
            validate_partition(two_triangles_bridge, np.full(6, -1))
        with pytest.raises(PartitioningError):
            validate_partition(two_triangles_bridge, np.full(6, 9), k=2)


class TestRefinement:
    def test_fm_improves_bad_bisection(self):
        g = grid_graph(8, 8)
        rng = np.random.default_rng(0)
        side = rng.random(64) < 0.5  # random split
        before = edge_cut(g, side.astype(np.int64))
        refined = fm_refine_bisection(g, side)
        after = edge_cut(g, refined.astype(np.int64))
        assert after < before

    def test_fm_respects_balance(self):
        g = gnm_random(100, 400, rng=np.random.default_rng(1))
        side = np.zeros(100, dtype=bool)
        side[:50] = True
        refined = fm_refine_bisection(g, side, max_imbalance=1.1)
        frac = refined.sum() / 100
        assert 0.4 <= frac <= 0.6

    def test_fm_keeps_optimal(self, two_triangles_bridge):
        side = np.asarray([False, False, False, True, True, True])
        refined = fm_refine_bisection(two_triangles_bridge, side)
        assert edge_cut(two_triangles_bridge, refined.astype(np.int64)) == 1.0

    def test_kway_improves(self):
        g = grid_graph(10, 10)
        rng = np.random.default_rng(2)
        parts = rng.integers(0, 4, size=100)
        before = edge_cut(g, parts)
        refined = kway_refine(g, parts, 4)
        assert edge_cut(g, refined) <= before

    def test_kway_enforces_balance(self):
        g = gnm_random(120, 500, rng=np.random.default_rng(3))
        parts = np.zeros(120, dtype=np.int64)  # everything in part 0
        refined = kway_refine(g, parts, 4, max_imbalance=1.25)
        assert partition_balance(g, refined, 4) <= 1.3


class TestMultilevel:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_recursive_bisection_valid(self, k):
        g = road_network(600, 8, rng=np.random.default_rng(4))
        parts = multilevel_recursive_bisection(g, k)
        assert validate_partition(g, parts, k) == k
        assert partition_sizes(g, parts, k).min() > 0
        assert partition_balance(g, parts, k) < 1.35

    def test_kway_valid(self):
        g = road_network(600, 8, rng=np.random.default_rng(5))
        parts = multilevel_kway(g, 8)
        assert validate_partition(g, parts, 8) == 8
        assert partition_balance(g, parts, 8) < 1.2

    def test_road_cut_much_smaller_than_random(self):
        """The Table 1 phenomenon at small scale."""
        n, m = 1500, 7500
        road = road_network(n, 10, rng=np.random.default_rng(6))
        rand = gnm_random(n, m, rng=np.random.default_rng(7))
        cut_road = edge_cut(road, multilevel_recursive_bisection(road, 8))
        cut_rand = edge_cut(rand, multilevel_recursive_bisection(rand, 8))
        assert cut_rand > 5 * cut_road

    def test_grid_bisection_near_optimal(self):
        g = grid_graph(16, 16)
        parts = multilevel_recursive_bisection(g, 2)
        # optimal straight cut is 16; allow slack for heuristics
        assert edge_cut(g, parts) <= 28

    def test_k_larger_than_n_rejected(self):
        g = from_edge_list([(0, 1)])
        with pytest.raises(PartitioningError):
            multilevel_recursive_bisection(g, 5)

    def test_directed_rejected(self):
        g = from_edge_list([(0, 1)], directed=True)
        with pytest.raises(PartitioningError):
            multilevel_kway(g, 2)

    def test_k1_is_trivial(self):
        g = grid_graph(5, 5)
        parts = multilevel_recursive_bisection(g, 1)
        assert (parts == 0).all()

    def test_deterministic_with_seed(self):
        g = road_network(300, 6, rng=np.random.default_rng(8))
        a = multilevel_kway(g, 4, rng=np.random.default_rng(1))
        b = multilevel_kway(g, 4, rng=np.random.default_rng(1))
        assert np.array_equal(a, b)


class TestSpectral:
    def test_fiedler_separates_two_cliques(self):
        edges = [(i, j) for i in range(8) for j in range(i + 1, 8)]
        edges += [(i, j) for i in range(8, 16) for j in range(i + 1, 16)]
        edges += [(0, 8)]
        g = from_edge_list(edges)
        f = fiedler_vector(g, method="lanczos")
        side = f > np.median(f)
        assert len(set(side[:8].tolist())) == 1
        assert len(set(side[8:].tolist())) == 1
        assert side[0] != side[8]

    def test_rqi_cut_comparable_to_lanczos(self):
        # Road graphs have many near-degenerate small eigenvalues, so the
        # two solvers may pick different (equally good) Fiedler-ish
        # vectors; compare cut *quality*, not vector identity.
        g = road_network(300, 6, rng=np.random.default_rng(9))
        cut_l = edge_cut(
            g, spectral_bisection(g, method="lanczos").astype(np.int64)
        )
        cut_r = edge_cut(
            g, spectral_bisection(g, method="rqi").astype(np.int64)
        )
        assert cut_r <= 3 * cut_l + 10

    def test_bisection_valid_on_road(self):
        g = road_network(400, 8, rng=np.random.default_rng(10))
        side = spectral_bisection(g, method="lanczos")
        assert 0.3 <= side.mean() <= 0.7

    def test_kway_on_road(self):
        g = road_network(400, 8, rng=np.random.default_rng(11))
        parts = spectral_kway(g, 4, method="lanczos")
        assert validate_partition(g, parts, 4) == 4
        assert partition_sizes(g, parts, 4).min() > 0

    def test_rqi_fails_on_small_world(self):
        """Table 1: Chaco-RQI fails to complete on the small-world
        instance (eigenvector localization on hubs)."""
        g = rmat(11, 5.0, rng=np.random.default_rng(12))
        with pytest.raises((ConvergenceError, PartitioningError)):
            spectral_kway(g, 8, method="rqi")

    def test_tiny_graph_rejected(self):
        g = from_edge_list([(0, 1)])
        with pytest.raises(PartitioningError):
            fiedler_vector(g)

    def test_unknown_method(self):
        g = road_network(100, 4)
        with pytest.raises(ValueError):
            fiedler_vector(g, method="voodoo")


class TestKwayDirtySetRegression:
    """The dirty-set fast path must produce *identical* partitions to
    the original exhaustive boundary re-scan (kept as
    ``_kway_refine_reference``)."""

    @pytest.mark.parametrize("seed,k", [(0, 2), (1, 3), (2, 4), (3, 7)])
    def test_identical_to_reference_rmat(self, seed, k):
        from repro.partitioning.refine import (
            _kway_refine_reference,
            kway_refine,
        )

        g = rmat(9, 6.0, rng=np.random.default_rng(seed))
        parts0 = np.random.default_rng(seed + 100).integers(
            0, k, g.n_vertices
        ).astype(np.int64)
        fast = kway_refine(g, parts0, k)
        ref = _kway_refine_reference(g, parts0, k)
        np.testing.assert_array_equal(fast, ref)

    def test_identical_to_reference_weighted(self):
        from repro.partitioning.refine import (
            _kway_refine_reference,
            kway_refine,
        )

        from repro.graph import from_edge_array

        rng = np.random.default_rng(11)
        base = gnm_random(200, 700, rng=rng)
        u, v = base.edge_endpoints()
        g = from_edge_array(
            200, u, v, weights=rng.random(u.shape[0]) + 0.1, directed=False
        )
        vw = rng.random(g.n_vertices) + 0.5
        parts0 = rng.integers(0, 4, g.n_vertices).astype(np.int64)
        fast = kway_refine(g, parts0, 4, vertex_weights=vw)
        ref = _kway_refine_reference(g, parts0, 4, vertex_weights=vw)
        np.testing.assert_array_equal(fast, ref)
