"""Fault-tolerant runtime + chaos harness tests.

The contract under test everywhere: with a :class:`FaultPolicy` armed
and deterministic faults injected (transient raises, hung tasks, hard
worker exits, shm attach failures), every dispatch completes with
results **bit-identical** to the fault-free run, every recovery action
is counted on ``PoolStats``, and no pool, future or ``/dev/shm``
segment outlives the context.

The tier-1 subset here exercises one representative of each recovery
path; the exhaustive fault x backend x crash-mode matrix is marked
``chaos_full`` (excluded from tier-1, select with ``-m chaos_full``).
"""

from __future__ import annotations

import _thread
import os
import threading
import time
import warnings

import numpy as np
import pytest

import repro
from repro.errors import (
    PhaseDeadlineExceeded,
    RetryExhausted,
    TaskTimeout,
    TransientWorkerError,
    WorkerCrashError,
)
from repro.graph import from_edge_list
from repro.parallel import (
    ChaosMonkey,
    ChaosPlan,
    Fault,
    FaultPolicy,
    ParallelContext,
    live_segment_names,
)


def _double(x):
    return 2 * x


def _degrees(graph, batch, payload):
    return np.asarray([graph.degree(int(v)) for v in batch])


def _small_graph():
    return from_edge_list([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0)])


def _batches():
    return [np.array([0, 1]), np.array([2]), np.array([3, 4])]


def _expected_degrees(graph, batches):
    return [
        np.asarray([graph.degree(int(v)) for v in b]) for b in batches
    ]


def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-Linux
        return set()


# ---------------------------------------------------------------------------
# Policy / planner units
# ---------------------------------------------------------------------------
class TestFaultPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(on_worker_crash="panic")
        with pytest.raises(ValueError):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            FaultPolicy(task_timeout=0.0)
        with pytest.raises(ValueError):
            FaultPolicy(jitter=1.5)

    def test_backoff_bounded_and_seeded(self):
        import random

        p = FaultPolicy(backoff_base=0.01, backoff_max=0.05, jitter=0.25)
        a = [p.backoff_seconds(r, random.Random(7)) for r in range(10)]
        b = [p.backoff_seconds(r, random.Random(7)) for r in range(10)]
        assert a == b  # deterministic under a fixed rng
        assert all(0.0 <= x <= 0.05 * 1.25 for x in a)

    def test_transient_classification(self):
        p = FaultPolicy(transient_types=(OSError,))
        assert p.is_transient(TransientWorkerError("x"))
        assert p.is_transient(WorkerCrashError("x"))
        assert p.is_transient(OSError("x"))
        assert not p.is_transient(ValueError("x"))


class TestPlanners:
    def test_fault_validation(self):
        with pytest.raises(ValueError):
            Fault("meteor")
        with pytest.raises(ValueError):
            Fault("raise", times=0)

    def test_plan_fires_bounded_times(self):
        plan = ChaosPlan([Fault("raise", task_index=1, times=2)])
        hits = [
            plan.fault_for(0, 1, attempt) for attempt in range(4)
        ]
        assert [h is not None for h in hits] == [True, True, False, False]
        assert plan.n_fired == 2
        plan.reset()
        assert plan.fault_for(0, 1, 0) is not None

    def test_plan_call_pinning(self):
        plan = ChaosPlan([Fault("raise", task_index=0, call_index=3)])
        assert plan.fault_for(2, 0, 0) is None
        assert plan.fault_for(3, 0, 0) is not None

    def test_monkey_deterministic_and_first_attempt_only(self):
        m1 = ChaosMonkey(seed=5, rate=0.5)
        m2 = ChaosMonkey(seed=5, rate=0.5)
        d1 = [m1.fault_for(0, i, 0) is not None for i in range(64)]
        d2 = [m2.fault_for(0, i, 0) is not None for i in range(64)]
        assert d1 == d2
        assert any(d1) and not all(d1)
        assert all(
            ChaosMonkey(seed=5, rate=1.0).fault_for(0, i, 1) is None
            for i in range(8)
        )
        assert not any(
            ChaosMonkey(seed=5, rate=0.0).fault_for(0, i, 0)
            for i in range(8)
        )


# ---------------------------------------------------------------------------
# Recovery paths (tier-1 smoke, one representative each)
# ---------------------------------------------------------------------------
class TestRecovery:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("kind", ["raise", "exit"])
    def test_map_recovers_transients(self, backend, kind):
        with ParallelContext(
            2, backend=backend,
            fault_policy=FaultPolicy(),
            chaos=ChaosPlan([Fault(kind, task_index=1)]),
        ) as ctx:
            out = ctx.map(_double, [1, 2, 3, 4])
            assert out == [2, 4, 6, 8]
            assert ctx.pool.faults_injected == 1
            if kind == "raise":
                assert ctx.pool.retries >= 1
            else:
                assert ctx.pool.worker_crashes >= 1

    def test_hang_detected_by_timeout(self):
        g = _small_graph()
        with ParallelContext(
            2, backend="thread",
            fault_policy=FaultPolicy(task_timeout=0.2),
            chaos=ChaosPlan([Fault("hang", task_index=0, hang_seconds=5.0)]),
        ) as ctx:
            t0 = time.monotonic()
            out = ctx.map_batches(_degrees, g, _batches())
            assert time.monotonic() - t0 < 4.0  # did not wait out the hang
            for got, exp in zip(out, _expected_degrees(g, _batches())):
                assert np.array_equal(got, exp)
            assert ctx.pool.task_timeouts >= 1
            assert ctx.pool.pool_rebuilds >= 1

    def test_timeout_without_retry_raises(self):
        with ParallelContext(
            2, backend="thread",
            fault_policy=FaultPolicy(task_timeout=0.1, retry_timeouts=False),
            chaos=ChaosPlan([Fault("hang", task_index=0, hang_seconds=3.0)]),
        ) as ctx:
            with pytest.raises(TaskTimeout):
                ctx.map(_double, [1, 2, 3])

    def test_phase_deadline_is_terminal(self):
        with ParallelContext(
            2, backend="thread",
            fault_policy=FaultPolicy(phase_deadline=0.15),
            chaos=ChaosPlan(
                [Fault("hang", task_index=0, hang_seconds=3.0, times=5)]
            ),
        ) as ctx:
            with pytest.raises(PhaseDeadlineExceeded):
                ctx.map(_double, [1, 2, 3])

    def test_shm_attach_falls_back_to_pickle(self):
        g = _small_graph()
        with ParallelContext(
            2, backend="process",
            fault_policy=FaultPolicy(),
            chaos=ChaosPlan([Fault("shm", task_index=1)]),
        ) as ctx:
            out = ctx.map_batches(_degrees, g, _batches())
            for got, exp in zip(out, _expected_degrees(g, _batches())):
                assert np.array_equal(got, exp)
            assert ctx.pool.shm_fallbacks >= 1

    def test_degradation_ladder_steps_down(self):
        g = _small_graph()
        with ParallelContext(
            2, backend="process",
            fault_policy=FaultPolicy(on_worker_crash="degrade"),
            chaos=ChaosPlan([Fault("exit", task_index=0, times=2)]),
        ) as ctx:
            out = ctx.map_batches(_degrees, g, _batches())
            for got, exp in zip(out, _expected_degrees(g, _batches())):
                assert np.array_equal(got, exp)
            assert ctx.pool.degradations >= 1

    def test_crash_mode_raise_propagates(self):
        with ParallelContext(
            2, backend="thread",
            fault_policy=FaultPolicy(on_worker_crash="raise"),
            chaos=ChaosPlan([Fault("exit", task_index=0)]),
        ) as ctx:
            with pytest.raises(WorkerCrashError):
                ctx.map(_double, [1, 2, 3])

    def test_retry_budget_exhausts(self):
        with ParallelContext(
            1, backend="serial",
            fault_policy=FaultPolicy(max_retries=2),
            chaos=ChaosPlan([Fault("raise", task_index=0, times=50)]),
        ) as ctx:
            with pytest.raises(RetryExhausted):
                ctx.map(_double, [1, 2])

    def test_nontransient_error_propagates_unretried(self):
        def boom(x):
            raise ValueError("task bug")

        with ParallelContext(
            2, backend="thread", fault_policy=FaultPolicy()
        ) as ctx:
            with pytest.raises(ValueError, match="task bug"):
                ctx.map(boom, [1, 2])
            assert ctx.pool.retries == 0

    def test_fast_path_untouched_without_policy(self, monkeypatch):
        # The no-policy, no-chaos path must never enter the resilient
        # driver — this is the structural form of the overhead gate.
        monkeypatch.setattr(
            ParallelContext,
            "_map_resilient",
            lambda *a, **k: pytest.fail("resilient path entered"),
        )
        with ParallelContext(2, backend="thread") as ctx:
            assert ctx.map(_double, [1, 2, 3]) == [2, 4, 6]


class TestObservability:
    def test_fault_events_and_counters_surface(self):
        g = repro.generators.rmat(
            6, 8, rng=np.random.default_rng(0)
        ).as_undirected()
        baseline = repro.run(
            "betweenness", g, backend="thread", n_workers=2, trace=False
        ).value
        plan = ChaosPlan([Fault("raise", task_index=0)])
        res = repro.run(
            "betweenness", g, backend="thread", n_workers=2,
            fault_policy=FaultPolicy(), chaos=plan,
        )
        assert np.array_equal(baseline, res.value)  # bit-identical
        assert plan.n_fired == 1
        names = []

        def walk(span):
            names.append(span.name)
            for child in span.children:
                walk(child)

        walk(res.trace)
        assert "fault.inject" in names
        assert "fault.retry" in names
        doc = res.to_dict()
        assert doc["pool"]["faults_injected"] == 1
        assert doc["pool"]["retries"] >= 1

    def test_algorithm_surface_accepts_fault_policy(self):
        g = _small_graph()
        base = repro.betweenness_centrality(g)
        out = repro.betweenness_centrality(
            g, fault_policy=FaultPolicy(max_retries=1)
        )
        assert np.array_equal(base, out)
        ctx = ParallelContext(2, backend="thread")
        try:
            repro.betweenness_centrality(g, ctx=ctx, fault_policy=FaultPolicy())
            assert ctx.fault_policy is None  # restored after the call
        finally:
            ctx.close()

    def test_fault_policy_rejected_without_ctx_arg(self):
        from repro.obs.api import algorithm

        @algorithm("_chaos_test_noctx", register=False)
        def noctx(graph):
            return 0

        with pytest.raises(TypeError, match="fault_policy"):
            noctx(_small_graph(), fault_policy=FaultPolicy())


# ---------------------------------------------------------------------------
# Satellite 1: no /dev/shm leakage, even across hard worker death
# ---------------------------------------------------------------------------
class TestShmHygiene:
    def test_worker_death_mid_task_leaks_no_segments(self):
        before = _shm_entries()
        g = _small_graph()
        ctx = ParallelContext(
            2, backend="process",
            fault_policy=FaultPolicy(),
            chaos=ChaosPlan([Fault("exit", task_index=0)]),
        )
        try:
            out = ctx.map_batches(_degrees, g, _batches())
            for got, exp in zip(out, _expected_degrees(g, _batches())):
                assert np.array_equal(got, exp)
            assert ctx.pool.worker_crashes >= 1
        finally:
            ctx.close()
        assert live_segment_names() == ()
        assert _shm_entries() - before == set()

    def test_shared_graph_double_close_idempotent(self):
        from repro.parallel.shm import share_graph

        seg = share_graph(_small_graph())
        assert seg.spec.shm_name in live_segment_names()
        seg.close()
        assert seg.spec.shm_name not in live_segment_names()
        seg.close()  # second close is a no-op
        assert seg.shm is None


# ---------------------------------------------------------------------------
# Satellite 2: close()/__del__ report leaks instead of swallowing them
# ---------------------------------------------------------------------------
class TestLifecycleWarnings:
    def test_del_warns_on_leaked_pool(self):
        ctx = ParallelContext(2, backend="thread")
        ctx.map(_double, [1, 2, 3])  # forces pool creation
        with pytest.warns(ResourceWarning, match="unclosed ParallelContext"):
            ctx.__del__()
        # after the warning the context is actually closed
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ctx.__del__()

    def test_close_survives_broken_pool(self):
        ctx = ParallelContext(
            2, backend="process",
            fault_policy=FaultPolicy(on_worker_crash="raise"),
            chaos=ChaosPlan([Fault("exit", task_index=0)]),
        )
        with pytest.raises(WorkerCrashError):
            ctx.map(_double, [1, 2, 3])
        ctx.close()  # must not raise or hang on the broken pool
        ctx.close()  # idempotent


# ---------------------------------------------------------------------------
# Satellite 3: KeyboardInterrupt mid-dispatch leaves nothing dangling
# ---------------------------------------------------------------------------
class TestKeyboardInterrupt:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_interrupt_during_map_batches(self, backend):
        before = _shm_entries()
        g = _small_graph()
        hang = 1.5 if backend == "thread" else 30.0
        ctx = ParallelContext(
            2, backend=backend,
            fault_policy=FaultPolicy(),
            chaos=ChaosPlan(
                [Fault("hang", task_index=0, hang_seconds=hang)]
            ),
        )
        timer = threading.Timer(0.3, _thread.interrupt_main)
        timer.start()
        try:
            with pytest.raises(KeyboardInterrupt):
                ctx.map_batches(_degrees, g, _batches())
        finally:
            timer.cancel()
            ctx.close()
        # pools were abandoned, segments released, nothing left behind
        assert ctx._thread_pool is None and ctx._process_pool is None
        assert live_segment_names() == ()
        assert _shm_entries() - before == set()


# ---------------------------------------------------------------------------
# Satellite 5: chaos wiring of the differential fuzz driver
# ---------------------------------------------------------------------------
class TestDifferentialChaos:
    def test_chaos_monkey_does_not_change_oracle_agreement(self):
        from repro.qa.differential import run_differential

        report = run_differential(
            seed=3,
            n_graphs=8,
            checks=("bfs", "connected_sv", "betweenness"),
            backends=("thread",),
            representations=("csr",),
            chaos=0.5,  # high rate so the tiny smoke corpus sees faults
            artifact_dir=None,
            shrink_failures=False,
        )
        assert report.ok, report.summary()
        assert report.faults_injected >= 1


class TestChaosCli:
    def test_chaos_command_matrix_green(self, capsys):
        from repro.cli import main

        rc = main([
            "chaos", "--scale", "5", "--backends", "thread",
            "--kinds", "raise,exit", "--workers", "2",
        ])
        outp = capsys.readouterr().out
        assert rc == 0
        assert "2/2 cells recovered bit-identically" in outp

    def test_backend_flags_build_policy(self):
        from repro.cli import build_parser
        from repro.cli_options import ExecutionOptions

        args = build_parser().parse_args([
            "analyze", "x.txt", "--timeout", "1.5", "--retries", "4",
            "--on-worker-crash", "degrade",
        ])
        fp = ExecutionOptions.from_args(args).fault_policy()
        assert fp.task_timeout == 1.5
        assert fp.max_retries == 4
        assert fp.on_worker_crash == "degrade"
        args = build_parser().parse_args(["analyze", "x.txt"])
        assert ExecutionOptions.from_args(args).fault_policy() is None


# ---------------------------------------------------------------------------
# Exhaustive matrix (chaos_full only)
# ---------------------------------------------------------------------------
@pytest.mark.chaos_full
class TestChaosFullMatrix:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("kind", ["raise", "hang", "exit", "shm"])
    @pytest.mark.parametrize("crash_mode", ["rebuild", "degrade"])
    def test_full_fault_matrix_bit_identical(self, backend, kind, crash_mode):
        g = repro.generators.rmat(
            7, 8, rng=np.random.default_rng(1)
        ).as_undirected()
        baseline = repro.run(
            "betweenness", g, backend=backend, n_workers=2, trace=False
        ).value
        plan = ChaosPlan([Fault(kind, task_index=0, hang_seconds=1.0)])
        policy = FaultPolicy(
            task_timeout=0.25 if kind == "hang" else None,
            on_worker_crash=crash_mode,
        )
        res = repro.run(
            "betweenness", g, backend=backend, n_workers=2, trace=False,
            fault_policy=policy, chaos=plan,
        )
        assert plan.n_fired >= 1
        assert np.array_equal(np.asarray(baseline), np.asarray(res.value))
        assert live_segment_names() == ()

    # The serial rung has no pool to time out or rebuild, but must
    # still retry transient faults inline (betweenness computes inline
    # on the serial backend, so this exercises dispatch directly).
    @pytest.mark.parametrize("kind", ["raise", "exit", "shm"])
    @pytest.mark.parametrize("crash_mode", ["rebuild", "degrade"])
    def test_serial_rung_retries_inline(self, kind, crash_mode):
        g = _small_graph()
        plan = ChaosPlan([Fault(kind, task_index=0)])
        with ParallelContext(
            1, backend="serial",
            fault_policy=FaultPolicy(on_worker_crash=crash_mode),
            chaos=plan,
        ) as ctx:
            out = ctx.map_batches(_degrees, g, _batches())
            for got, exp in zip(out, _expected_degrees(g, _batches())):
                assert np.array_equal(got, exp)
            assert plan.n_fired == 1
            assert ctx.pool.retries >= 1

    def test_differential_chaos_all_backends(self):
        from repro.qa.differential import run_differential

        report = run_differential(
            seed=0,
            n_graphs=16,
            backends=("serial", "thread", "process"),
            representations=("csr",),
            chaos=True,
            artifact_dir=None,
            shrink_failures=False,
        )
        assert report.ok, report.summary()
        assert report.faults_injected >= 1


# ---------------------------------------------------------------------------
# Streaming ingestion under chaos
# ---------------------------------------------------------------------------
class TestStreamChaos:
    """A stream survives worker death mid-batch, bit for bit.

    The engine's per-batch analytics (closeness refreshes dispatch
    through ``ctx.map``/``map_batches``) run under a chaos-armed
    context that kills a worker during a batch; the fault-tolerant
    runtime must recover so every per-batch checksum — and the final
    label/score arrays — equal the fault-free run exactly.
    """

    def _batches(self):
        from repro.datasets import karate_club
        from repro.dynamic import crawl_events, group_batches

        g = karate_club()
        events = crawl_events(
            g, policy="bfs", batch_size=8,
            rng=np.random.default_rng(5),
        )
        return g.n_vertices, list(group_batches(events))

    def _run(self, n, batches, ctx=None):
        from repro.dynamic import StreamEngine

        eng = StreamEngine(
            n, analytics=("components", "stats", "degree", "closeness"),
            k=5, ctx=ctx,
        )
        for b in batches:
            eng.apply_batch(b)
        return eng

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_worker_death_mid_batch_bit_identical(self, backend):
        n, batches = self._batches()
        clean = self._run(n, batches)
        plan = ChaosPlan([Fault("exit", task_index=0, call_index=1)])
        with ParallelContext(
            2, backend=backend,
            fault_policy=FaultPolicy(),
            chaos=plan,
        ) as ctx:
            chaotic = self._run(n, batches, ctx=ctx)
            assert plan.n_fired >= 1
            assert ctx.pool.faults_injected >= 1
        assert (
            [r.checksum for r in chaotic.results]
            == [r.checksum for r in clean.results]
        )
        assert np.array_equal(
            chaotic.results[-1].labels, clean.results[-1].labels
        )
        assert np.array_equal(chaotic._clo, clean._clo)
        assert live_segment_names() == ()

    def test_resume_from_last_applied_batch(self):
        # Crash-and-restart shape: the engine dies after batch j-1, a
        # replacement restores from its checkpoint and replays the
        # remaining batches; the stitched run is bit-identical to an
        # uninterrupted one, including under chaos on the replay side.
        from repro.dynamic import StreamEngine

        n, batches = self._batches()
        clean = self._run(n, batches)
        j = len(batches) // 2
        first = self._run(n, batches[:j])
        state = first.checkpoint()
        del first  # the "dead" process

        plan = ChaosPlan([Fault("raise", task_index=0)])
        with ParallelContext(
            2, backend="thread",
            fault_policy=FaultPolicy(),
            chaos=plan,
        ) as ctx:
            resumed = StreamEngine.restore(state, ctx=ctx)
            for b in batches[j:]:
                resumed.apply_batch(b)
        assert (
            [r.checksum for r in resumed.results]
            == [r.checksum for r in clean.results]
        )
        assert np.array_equal(resumed._clo, clean._clo)
