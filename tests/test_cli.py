"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import karate_club
from repro.graph.io import load_npz, read_edge_list, write_edge_list


@pytest.fixture
def karate_file(tmp_path):
    p = tmp_path / "karate.txt"
    write_edge_list(karate_club(), p)
    return str(p)


class TestAnalyze:
    def test_basic(self, karate_file, capsys):
        assert main(["analyze", karate_file]) == 0
        out = capsys.readouterr().out
        assert "n=34" in out
        assert "clustering coeff" in out

    def test_with_paths(self, karate_file, capsys):
        assert main(["analyze", karate_file, "--paths"]) == 0
        assert "effective diameter" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent/graph.txt"]) == 1
        assert "error" in capsys.readouterr().err


class TestCluster:
    @pytest.mark.parametrize("algo", ["pla", "pma", "cnm"])
    def test_algorithms(self, karate_file, capsys, algo):
        assert main(["cluster", karate_file, "-a", algo]) == 0
        out = capsys.readouterr().out
        assert "Q = 0." in out

    def test_label_output(self, karate_file, tmp_path, capsys):
        out_file = tmp_path / "labels.txt"
        assert main(
            ["cluster", karate_file, "-a", "pma", "-o", str(out_file)]
        ) == 0
        rows = out_file.read_text().strip().splitlines()
        assert len(rows) == 34


class TestPartition:
    def test_kmetis(self, karate_file, capsys):
        assert main(["partition", karate_file, "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "edge cut" in out
        assert "balance" in out

    def test_partition_output(self, karate_file, tmp_path):
        out_file = tmp_path / "parts.txt"
        assert main(
            ["partition", karate_file, "-k", "2", "-o", str(out_file)]
        ) == 0
        parts = np.loadtxt(out_file, dtype=int)
        assert parts.shape[0] == 34
        assert set(parts.tolist()) == {0, 1}


class TestBackendFlags:
    def test_cluster_thread_backend(self, karate_file, capsys):
        assert main(
            ["cluster", karate_file, "-a", "pla",
             "--backend", "thread", "--workers", "2"]
        ) == 0
        assert "Q = 0." in capsys.readouterr().out

    def test_cluster_profile_output(self, karate_file, tmp_path, capsys):
        prof = tmp_path / "cluster.json"
        assert main(
            ["cluster", karate_file, "-a", "pma", "--profile", str(prof)]
        ) == 0
        doc = json.loads(prof.read_text())
        assert doc["command"] == "cluster"
        assert doc["trace"]["name"] == "trace"
        assert any(c["name"] == "pma" for c in doc["trace"]["children"])
        assert "pool" in doc and "cost_model" in doc

    def test_analyze_profile_output(self, karate_file, tmp_path):
        prof = tmp_path / "analyze.json"
        assert main(["analyze", karate_file, "--profile", str(prof)]) == 0
        doc = json.loads(prof.read_text())
        assert doc["command"] == "analyze"
        assert doc["elapsed_seconds"] > 0

    def test_partition_profile_output(self, karate_file, tmp_path):
        prof = tmp_path / "partition.json"
        assert main(
            ["partition", karate_file, "-k", "2", "--profile", str(prof)]
        ) == 0
        doc = json.loads(prof.read_text())
        assert doc["command"] == "partition"
        names = json.dumps(doc["trace"])
        assert "coarsen" in names


class TestProfile:
    def test_profile_file_input(self, karate_file, tmp_path, capsys):
        out = tmp_path / "profile.json"
        assert main(
            ["profile", karate_file,
             "--algorithms", "closeness,connected_components",
             "-o", str(out)]
        ) == 0
        doc = json.loads(out.read_text())
        assert doc["graph"]["n_vertices"] == 34
        assert set(doc["runs"]) == {"closeness", "connected_components"}
        close = doc["runs"]["closeness"]
        assert close["trace"]["name"] == "trace"
        flat = json.dumps(close["trace"])
        for span_name in ("msbfs", "level", "map_batches", "batch"):
            assert span_name in flat
        text = capsys.readouterr().out
        assert "closeness" in text

    def test_profile_rmat_backend(self, tmp_path):
        out = tmp_path / "profile.json"
        assert main(
            ["profile", "--rmat-scale", "6", "--seed", "0",
             "--algorithms", "betweenness,pbd",
             "--backend", "thread", "--workers", "2",
             "-o", str(out)]
        ) == 0
        doc = json.loads(out.read_text())
        assert doc["backend"] == "thread" and doc["n_workers"] == 2
        bet = doc["runs"]["betweenness"]
        flat = json.dumps(bet["trace"])
        for span_name in ("brandes", "forward_level", "backward_level"):
            assert span_name in flat
        assert bet["pool"]["batch_calls"] >= 1
        assert json.dumps(doc["runs"]["pbd"]["trace"]).count("brandes") >= 1

    def test_profile_unknown_algorithm(self, karate_file, capsys):
        assert main(
            ["profile", karate_file, "--algorithms", "bogus"]
        ) != 0
        assert "unknown algorithm" in capsys.readouterr().err

    def test_profile_needs_input(self, capsys):
        assert main(["profile"]) != 0
        assert capsys.readouterr().err


class TestGenerateConvert:
    def test_generate_rmat(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        assert main(
            ["generate", "rmat", "--scale", "7", "-o", str(out)]
        ) == 0
        g = read_edge_list(out)
        assert g.n_vertices <= 128

    def test_generate_planted_npz(self, tmp_path):
        out = tmp_path / "g.npz"
        assert main(
            ["generate", "planted", "-n", "80", "--blocks", "4",
             "-o", str(out)]
        ) == 0
        g = load_npz(out)
        assert g.n_vertices == 80

    def test_convert_to_metis(self, karate_file, tmp_path):
        out = tmp_path / "karate.graph"
        assert main(
            ["convert", karate_file, str(out), "--to", "metis"]
        ) == 0
        from repro.graph.io import read_metis

        g = read_metis(out)
        assert g.n_edges == 78

    def test_roundtrip_via_npz(self, karate_file, tmp_path):
        npz = tmp_path / "k.npz"
        back = tmp_path / "k2.txt"
        assert main(["convert", karate_file, str(npz), "--to", "npz"]) == 0
        assert main(["convert", str(npz), str(back), "--to", "edgelist"]) == 0
        assert read_edge_list(back).n_edges == 78


class TestStream:
    def test_crawl_and_save_events(self, karate_file, tmp_path, capsys):
        events_path = tmp_path / "karate.events"
        out = tmp_path / "stream.json"
        assert main(
            ["stream", karate_file, "--policy", "bfs", "--batch-size", "8",
             "--save-events", str(events_path), "-o", str(out)]
        ) == 0
        captured = capsys.readouterr().out
        assert "batch" in captured
        doc = json.loads(out.read_text())
        assert doc["n_vertices"] == 34
        assert doc["batches"]
        assert doc["batches"][-1]["n_edges"] == 78
        assert all("checksum" in b for b in doc["batches"])
        assert events_path.exists()

    def test_replay_events_file(self, karate_file, tmp_path, capsys):
        events_path = tmp_path / "karate.events"
        assert main(
            ["stream", karate_file, "--save-events", str(events_path)]
        ) == 0
        capsys.readouterr()
        assert main(["stream", str(events_path)]) == 0
        assert "78" in capsys.readouterr().out

    def test_check_stream_green(self, tmp_path, capsys):
        assert main(
            ["check", "--stream", "--graphs", "8",
             "--artifacts", str(tmp_path)]
        ) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_stream_planted_fault_caught(self, tmp_path, capsys):
        assert main(
            ["check", "--stream", "--graphs", "6", "--fault",
             "cc_skip_union", "--artifacts", str(tmp_path)]
        ) == 1
        out = capsys.readouterr().out
        assert "cc_skip_union" in out or "components" in out
        assert list(tmp_path.glob("*.events"))
