"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import karate_club
from repro.graph.io import load_npz, read_edge_list, write_edge_list


@pytest.fixture
def karate_file(tmp_path):
    p = tmp_path / "karate.txt"
    write_edge_list(karate_club(), p)
    return str(p)


class TestAnalyze:
    def test_basic(self, karate_file, capsys):
        assert main(["analyze", karate_file]) == 0
        out = capsys.readouterr().out
        assert "n=34" in out
        assert "clustering coeff" in out

    def test_with_paths(self, karate_file, capsys):
        assert main(["analyze", karate_file, "--paths"]) == 0
        assert "effective diameter" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent/graph.txt"]) == 1
        assert "error" in capsys.readouterr().err


class TestCluster:
    @pytest.mark.parametrize("algo", ["pla", "pma", "cnm"])
    def test_algorithms(self, karate_file, capsys, algo):
        assert main(["cluster", karate_file, "-a", algo]) == 0
        out = capsys.readouterr().out
        assert "Q = 0." in out

    def test_label_output(self, karate_file, tmp_path, capsys):
        out_file = tmp_path / "labels.txt"
        assert main(
            ["cluster", karate_file, "-a", "pma", "-o", str(out_file)]
        ) == 0
        rows = out_file.read_text().strip().splitlines()
        assert len(rows) == 34


class TestPartition:
    def test_kmetis(self, karate_file, capsys):
        assert main(["partition", karate_file, "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "edge cut" in out
        assert "balance" in out

    def test_partition_output(self, karate_file, tmp_path):
        out_file = tmp_path / "parts.txt"
        assert main(
            ["partition", karate_file, "-k", "2", "-o", str(out_file)]
        ) == 0
        parts = np.loadtxt(out_file, dtype=int)
        assert parts.shape[0] == 34
        assert set(parts.tolist()) == {0, 1}


class TestGenerateConvert:
    def test_generate_rmat(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        assert main(
            ["generate", "rmat", "--scale", "7", "-o", str(out)]
        ) == 0
        g = read_edge_list(out)
        assert g.n_vertices <= 128

    def test_generate_planted_npz(self, tmp_path):
        out = tmp_path / "g.npz"
        assert main(
            ["generate", "planted", "-n", "80", "--blocks", "4",
             "-o", str(out)]
        ) == 0
        g = load_npz(out)
        assert g.n_vertices == 80

    def test_convert_to_metis(self, karate_file, tmp_path):
        out = tmp_path / "karate.graph"
        assert main(
            ["convert", karate_file, str(out), "--to", "metis"]
        ) == 0
        from repro.graph.io import read_metis

        g = read_metis(out)
        assert g.n_edges == 78

    def test_roundtrip_via_npz(self, karate_file, tmp_path):
        npz = tmp_path / "k.npz"
        back = tmp_path / "k2.txt"
        assert main(["convert", karate_file, str(npz), "--to", "npz"]) == 0
        assert main(["convert", str(npz), str(back), "--to", "edgelist"]) == 0
        assert read_edge_list(back).n_edges == 78
