"""Tests for SNA metrics and preprocessing against networkx oracles."""

from __future__ import annotations

import numpy as np
import pytest

import networkx as nx

from repro.graph import from_edge_list, from_networkx, to_networkx
from repro.metrics import (
    average_degree,
    degree_distribution,
    degree_histogram,
    density,
    local_clustering_coefficients,
    average_clustering,
    global_clustering_coefficient,
    triangle_counts,
    average_shortest_path_length,
    effective_diameter,
    eccentricity_sample,
    rich_club_coefficient,
    degree_assortativity,
    average_neighbor_degree,
    neighbor_connectivity,
    preprocess,
    lethality_screen,
    is_bipartite,
)
from repro.metrics.basic import degree_skewness

from tests.conftest import random_gnm


@pytest.fixture(scope="module")
def karate():
    gx = nx.karate_club_graph()
    plain = nx.Graph()
    plain.add_nodes_from(range(gx.number_of_nodes()))
    plain.add_edges_from(gx.edges())
    return from_networkx(plain)


class TestBasic:
    def test_average_degree(self, triangle_plus_tail):
        assert average_degree(triangle_plus_tail) == pytest.approx(2.0)

    def test_density(self, triangle_plus_tail):
        assert density(triangle_plus_tail) == pytest.approx(4 / 6)

    def test_degree_distribution_sums_to_one(self, karate):
        _, p = degree_distribution(karate)
        assert p.sum() == pytest.approx(1.0)

    def test_degree_histogram_matches_networkx(self, karate):
        ref = nx.degree_histogram(nx.karate_club_graph())
        assert degree_histogram(karate).tolist() == ref

    def test_empty(self):
        g = from_edge_list([], n_vertices=0)
        assert average_degree(g) == 0.0
        assert density(g) == 0.0

    def test_skewness_star_positive(self):
        g = from_edge_list([(0, i) for i in range(1, 30)])
        assert degree_skewness(g) > 2.0

    def test_skewness_cycle_zero(self):
        g = from_edge_list([(i, (i + 1) % 10) for i in range(10)])
        assert degree_skewness(g) == 0.0


class TestClustering:
    def test_triangle_counts_matches_networkx(self, karate):
        ref = nx.triangles(nx.karate_club_graph())
        mine = triangle_counts(karate)
        for v, t in ref.items():
            assert mine[v] == t

    def test_local_matches_networkx(self, karate):
        ref = nx.clustering(nx.karate_club_graph())
        mine = local_clustering_coefficients(karate)
        for v, c in ref.items():
            assert mine[v] == pytest.approx(c)

    def test_average_matches_networkx(self, karate):
        assert average_clustering(karate) == pytest.approx(
            nx.average_clustering(nx.karate_club_graph())
        )

    def test_transitivity_matches_networkx(self):
        g = random_gnm(60, 200, seed=37)
        assert global_clustering_coefficient(g) == pytest.approx(
            nx.transitivity(to_networkx(g))
        )

    def test_triangle_free(self):
        g = from_edge_list([(i, i + 1) for i in range(6)])
        assert triangle_counts(g).sum() == 0
        assert average_clustering(g) == 0.0

    def test_complete_graph(self):
        g = from_edge_list([(i, j) for i in range(5) for j in range(i + 1, 5)])
        assert np.allclose(local_clustering_coefficients(g), 1.0)
        assert global_clustering_coefficient(g) == pytest.approx(1.0)

    def test_edge_mask(self, two_triangles_bridge):
        view = two_triangles_bridge.view()
        u, v = two_triangles_bridge.edge_endpoints()
        eid = next(
            i
            for i in range(two_triangles_bridge.n_edges)
            if {int(u[i]), int(v[i])} == {0, 1}
        )
        view.deactivate(eid)
        tri = triangle_counts(view)
        assert tri[0] == 0 and tri[1] == 0  # first triangle broken
        assert tri[3] == 1


class TestPaths:
    def test_aspl_matches_networkx(self, karate):
        ref = nx.average_shortest_path_length(nx.karate_club_graph())
        assert average_shortest_path_length(karate) == pytest.approx(ref)

    def test_aspl_path_graph(self):
        g = from_edge_list([(0, 1), (1, 2)])
        # pairs: (0,1)=1,(0,2)=2,(1,2)=1 → mean 4/3
        assert average_shortest_path_length(g) == pytest.approx(4 / 3)

    def test_aspl_sampled_close(self, karate):
        exact = average_shortest_path_length(karate)
        est = average_shortest_path_length(
            karate, n_samples=20, rng=np.random.default_rng(3)
        )
        assert est == pytest.approx(exact, rel=0.2)

    def test_effective_diameter_cycle(self):
        g = from_edge_list([(i, (i + 1) % 10) for i in range(10)])
        assert effective_diameter(g, percentile=1.0) == 5.0
        assert effective_diameter(g, percentile=0.5) <= 3.0

    def test_eccentricity_bounds_diameter(self, karate):
        _, max_ecc = eccentricity_sample(karate, n_samples=34)
        assert max_ecc == nx.diameter(nx.karate_club_graph())

    def test_bad_percentile(self, karate):
        with pytest.raises(ValueError):
            effective_diameter(karate, percentile=0.0)


class TestRichClub:
    def test_matches_networkx(self, karate):
        ref = nx.rich_club_coefficient(
            nx.karate_club_graph(), normalized=False
        )
        mine = rich_club_coefficient(karate)
        assert set(mine) == set(ref)
        for k in ref:
            assert mine[k] == pytest.approx(ref[k])

    def test_random_graph(self):
        g = random_gnm(50, 160, seed=43)
        gx = to_networkx(g)
        ref = nx.rich_club_coefficient(gx, normalized=False)
        mine = rich_club_coefficient(g)
        for k in ref:
            assert mine[k] == pytest.approx(ref[k])


class TestAssortativity:
    def test_matches_networkx(self, karate):
        ref = nx.degree_assortativity_coefficient(nx.karate_club_graph())
        assert degree_assortativity(karate) == pytest.approx(ref)

    def test_random_graph(self):
        g = random_gnm(80, 200, seed=47)
        ref = nx.degree_assortativity_coefficient(to_networkx(g))
        assert degree_assortativity(g) == pytest.approx(ref)

    def test_star_disassortative(self):
        g = from_edge_list([(0, i) for i in range(1, 10)])
        assert degree_assortativity(g) < 0  # hub-leaf only

    def test_average_neighbor_degree_matches(self, karate):
        ref = nx.average_neighbor_degree(nx.karate_club_graph())
        mine = average_neighbor_degree(karate)
        for v, x in ref.items():
            assert mine[v] == pytest.approx(x)

    def test_knn_matches_networkx(self, karate):
        ref = nx.k_nearest_neighbors(nx.karate_club_graph()) if hasattr(
            nx, "k_nearest_neighbors"
        ) else nx.average_degree_connectivity(nx.karate_club_graph())
        mine = neighbor_connectivity(karate)
        for k, x in ref.items():
            assert mine[k] == pytest.approx(x)


class TestPreprocess:
    def test_bipartite_detection(self):
        g = from_edge_list([(0, 3), (1, 3), (2, 4), (1, 4)])
        assert is_bipartite(g)
        g2 = from_edge_list([(0, 1), (1, 2), (2, 0)])
        assert not is_bipartite(g2)

    def test_bipartite_even_cycle(self):
        g = from_edge_list([(i, (i + 1) % 8) for i in range(8)])
        assert is_bipartite(g)

    def test_lethality_screen(self, two_triangles_bridge):
        # vertices 2, 3 are articulation points of degree 3 each
        flagged = lethality_screen(two_triangles_bridge, degree_threshold=3)
        assert flagged.tolist() == [2, 3]
        assert lethality_screen(
            two_triangles_bridge, degree_threshold=2
        ).shape[0] == 0

    def test_report_fields(self, karate):
        rep = preprocess(karate)
        assert rep.n_vertices == 34
        assert rep.n_edges == 78
        assert rep.n_components == 1
        assert rep.largest_component_fraction == 1.0
        assert rep.average_clustering == pytest.approx(
            nx.average_clustering(nx.karate_club_graph())
        )
        assert not rep.bipartite
        assert rep.looks_small_world

    def test_report_disconnected(self, disconnected_graph):
        rep = preprocess(disconnected_graph)
        assert rep.n_components == 3
        assert rep.largest_component_fraction == pytest.approx(0.5)

    def test_mesh_not_small_world(self):
        # 2D grid: constant degrees, no skew
        edges = []
        k = 8
        for i in range(k):
            for j in range(k):
                v = i * k + j
                if j + 1 < k:
                    edges.append((v, v + 1))
                if i + 1 < k:
                    edges.append((v, v + k))
        g = from_edge_list(edges)
        rep = preprocess(g)
        assert not rep.looks_small_world
