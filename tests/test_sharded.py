"""Out-of-core shard sets: round-trip, parity, recovery, admission.

The contract under test (DESIGN §12): a graph partitioned into
memory-mapped shards and run shard-at-a-time under the BSP superstep
driver produces results **bit-identical** to the in-core kernels — on
every backend, through worker crashes, and under a memory budget the
in-core path cannot meet.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.centrality.closeness import closeness_centrality
from repro.community.modularity import modularity
from repro.community.pla import pla
from repro.datasets.karate import karate_club
from repro.errors import GraphStructureError, MemoryBudgetExceeded
from repro.generators.rmat import rmat
from repro.graph import from_edge_array
from repro.kernels.bfs import msbfs
from repro.kernels.connected import connected_components
from repro.parallel import ChaosPlan, Fault, FaultPolicy, ParallelContext
from repro.parallel.costmodel import CostModel, recommend_shards
from repro.sharded import (
    BSPCheckpointer,
    BSPDriver,
    MemoryBudget,
    build_shard_set,
    in_core_nbytes,
    is_shard_set_path,
    load_shard,
    open_shard_set,
    sharded_closeness,
    sharded_connected_components,
    sharded_modularity,
    sharded_msbfs,
    sharded_pla,
)


@pytest.fixture(scope="module")
def karate():
    return karate_club()


@pytest.fixture(scope="module")
def rmat10():
    return rmat(10, 8.0, rng=np.random.default_rng(7))


def _weighted_messy():
    """Weighted graph with self-loops, duplicates and isolated vertices."""
    rng = np.random.default_rng(3)
    n = 60
    u = rng.integers(0, n, size=140)
    v = rng.integers(0, n, size=140)
    w = rng.integers(1, 6, size=140).astype(np.float64)
    return from_edge_array(n + 5, u, v, weights=w, directed=False,
                           dedupe=True, drop_self_loops=False)


# ---------------------------------------------------------------------------
# Round-trip: build -> write -> mmap-load -> stitch, bit-exact
# ---------------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_stitch_bit_exact(self, karate, tmp_path, k):
        ss = build_shard_set(karate, tmp_path / f"k{k}", k=k)
        g = ss.stitch()
        assert g.offsets.tobytes() == karate.offsets.tobytes()
        assert g.targets.tobytes() == karate.targets.tobytes()
        assert g.n_edges == karate.n_edges
        assert ss.verify(deep=True) == []

    def test_shards_are_memory_mapped(self, karate, tmp_path):
        ss = build_shard_set(karate, tmp_path / "s", k=3)
        sh = ss.shard(0)
        # The CSR payload must come off disk as a mapping, not a copy.
        assert isinstance(sh.offsets, np.memmap)
        assert isinstance(sh.targets, np.memmap)
        assert sh.n_owned + ss.shard(1).n_owned + ss.shard(2).n_owned == 34

    def test_weighted_self_loops_isolated(self, tmp_path):
        g = _weighted_messy()
        ss = build_shard_set(g, tmp_path / "w", k=4)
        st_g = ss.stitch()
        assert st_g.offsets.tobytes() == g.offsets.tobytes()
        assert st_g.targets.tobytes() == g.targets.tobytes()
        assert st_g.weights.tobytes() == g.weights.tobytes()
        assert float(ss.total_weight) == float(g.edge_weights().sum())

    def test_directed_refused(self, tmp_path):
        g = from_edge_array(3, np.array([0, 1]), np.array([1, 2]),
                            directed=True)
        with pytest.raises(GraphStructureError):
            build_shard_set(g, tmp_path / "d", k=2)

    def test_load_single_shard(self, karate, tmp_path):
        ss = build_shard_set(karate, tmp_path / "s", k=2)
        sh = load_shard(ss.shard_path(0), index=0)
        assert sh.n_owned == ss.shard(0).n_owned
        assert np.array_equal(sh.owned, ss.shard(0).owned)

    def test_is_shard_set_path(self, karate, tmp_path):
        ss = build_shard_set(karate, tmp_path / "s", k=2)
        assert is_shard_set_path(ss.root)
        assert is_shard_set_path(ss.root / "manifest.json")
        assert not is_shard_set_path(tmp_path)


graph_edges = st.lists(
    st.tuples(st.integers(0, 19), st.integers(0, 19),
              st.integers(1, 5)),
    min_size=0, max_size=60,
)


@given(graph_edges, st.booleans(), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(edges, weighted, k):
    """build -> write -> mmap-load -> stitch is the identity, bit-for-bit,
    including isolated vertices, self-loops and weighted graphs."""
    import tempfile

    n = 20
    u = np.asarray([e[0] for e in edges], dtype=np.int64)
    v = np.asarray([e[1] for e in edges], dtype=np.int64)
    w = (np.asarray([float(e[2]) for e in edges])
         if weighted and edges else None)
    g = from_edge_array(n, u, v, weights=w, directed=False,
                        dedupe=True, drop_self_loops=False)
    with tempfile.TemporaryDirectory(prefix="shard-prop-") as tmp:
        ss = build_shard_set(g, os.path.join(tmp, "s"), k=k)
        reopened = open_shard_set(ss.root)
        stitched = reopened.stitch()
        assert stitched.offsets.tobytes() == g.offsets.tobytes()
        assert stitched.targets.tobytes() == g.targets.tobytes()
        assert stitched.n_edges == g.n_edges
        if g.weights is not None:
            assert stitched.weights.tobytes() == g.weights.tobytes()
        assert reopened.verify(deep=True) == []


# ---------------------------------------------------------------------------
# Verification / corruption detection
# ---------------------------------------------------------------------------
class TestVerify:
    def test_corruption_detected(self, karate, tmp_path):
        ss = build_shard_set(karate, tmp_path / "s", k=2)
        path = ss.shard_path(1)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # flip one payload bit
        path.write_bytes(bytes(blob))
        fresh = open_shard_set(ss.root)
        assert fresh.verify() != []

    def test_missing_file_detected(self, karate, tmp_path):
        ss = build_shard_set(karate, tmp_path / "s", k=2)
        ss.shard_path(0).unlink()
        assert open_shard_set(ss.root).verify() != []

    @staticmethod
    def _leave_checkpoint(ss):
        """Park one valid BSP checkpoint under the shard-set root."""
        drv = BSPDriver(ss, checkpointer=BSPCheckpointer(
            ss.root / ".checkpoints", every=1))
        drv.last_completed = 0
        assert drv.maybe_checkpoint("msbfs", {"n": ss.n_vertices})
        [path] = (ss.root / ".checkpoints").glob("*.ckpt")
        return path

    def test_valid_checkpoint_passes_verify(self, karate, tmp_path):
        ss = build_shard_set(karate, tmp_path / "s", k=2)
        self._leave_checkpoint(ss)
        assert open_shard_set(ss.root).verify() == []

    def test_checkpoint_bit_flip_detected(self, karate, tmp_path):
        ss = build_shard_set(karate, tmp_path / "s", k=2)
        path = self._leave_checkpoint(ss)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        problems = open_shard_set(ss.root).verify()
        assert problems and str(path) in problems[0]

    def test_checkpoint_truncation_detected(self, karate, tmp_path):
        ss = build_shard_set(karate, tmp_path / "s", k=2)
        path = self._leave_checkpoint(ss)
        path.write_bytes(path.read_bytes()[:11])
        problems = open_shard_set(ss.root).verify()
        assert problems and "truncated" in problems[0]


# ---------------------------------------------------------------------------
# Parity with the in-core kernels (bit-identical)
# ---------------------------------------------------------------------------
class TestParity:
    @pytest.fixture(scope="class", params=["karate", "rmat10", "weighted"])
    def pair(self, request, karate, rmat10, tmp_path_factory):
        g = {"karate": karate, "rmat10": rmat10,
             "weighted": _weighted_messy()}[request.param]
        root = tmp_path_factory.mktemp("parity") / request.param
        return g, build_shard_set(g, root, k=3)

    def test_msbfs(self, pair):
        g, ss = pair
        sources = [0, 1, g.n_vertices - 1]
        ref = msbfs(g, sources)
        got = sharded_msbfs(ss, sources)
        assert np.array_equal(got.distances, ref.distances)
        assert got.n_levels == ref.n_levels
        assert got.distances.dtype == ref.distances.dtype

    def test_connected_components(self, pair):
        g, ss = pair
        assert np.array_equal(
            sharded_connected_components(ss), connected_components(g)
        )

    def test_closeness(self, pair):
        g, ss = pair
        if g.is_weighted:
            with pytest.raises(GraphStructureError):
                sharded_closeness(ss)
            return
        ref = closeness_centrality(g)
        got = sharded_closeness(ss)
        assert got.tobytes() == ref.tobytes()

    def test_modularity(self, pair):
        g, ss = pair
        labels = np.arange(g.n_vertices, dtype=np.int64) % 4
        assert sharded_modularity(ss, labels) == modularity(g, labels)

    def test_pla(self, pair):
        g, ss = pair
        ref = pla(g, multilevel=True)
        got = sharded_pla(ss)
        assert got.modularity == ref.modularity
        assert np.array_equal(got.labels, ref.labels)
        assert got.extras == ref.extras

    def test_chunked_streams_match(self, pair):
        """Chunk size must not change a single bit of the result."""
        g, ss = pair
        labels = np.arange(g.n_vertices, dtype=np.int64) % 3
        assert (sharded_modularity(ss, labels, chunk_edges=7)
                == modularity(g, labels))


class TestBackendParity:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_all_backends_bit_identical(self, karate, tmp_path, backend):
        ss = build_shard_set(karate, tmp_path / "s", k=3)
        with ParallelContext(2, backend=backend) as ctx:
            got = sharded_msbfs(ss, [0, 5, 33], ctx=ctx)
            labels = sharded_connected_components(ss, ctx=ctx)
            res = sharded_pla(ss, ctx=ctx)
        ref = msbfs(karate, [0, 5, 33])
        assert np.array_equal(got.distances, ref.distances)
        assert np.array_equal(labels, connected_components(karate))
        ref_pla = pla(karate, multilevel=True)
        assert res.modularity == ref_pla.modularity
        assert np.array_equal(res.labels, ref_pla.labels)


# ---------------------------------------------------------------------------
# Recovery: a worker killed mid-superstep resumes from the last
# completed superstep and still produces bit-identical results
# ---------------------------------------------------------------------------
class TestRecovery:
    def test_worker_killed_mid_superstep(self, karate, tmp_path):
        ss = build_shard_set(karate, tmp_path / "s", k=3)
        ref = msbfs(karate, [0, 16, 33])
        with ParallelContext(
            2, backend="process",
            fault_policy=FaultPolicy(),
            chaos=ChaosPlan([Fault("exit", task_index=0, times=1)]),
        ) as ctx:
            got = sharded_msbfs(ss, [0, 16, 33], ctx=ctx)
            assert ctx.pool.faults_injected == 1
            assert ctx.pool.worker_crashes >= 1
        assert np.array_equal(got.distances, ref.distances)

    def test_pla_survives_repeated_crashes(self, karate, tmp_path):
        ss = build_shard_set(karate, tmp_path / "s", k=2)
        ref = pla(karate, multilevel=True)
        with ParallelContext(
            2, backend="process",
            fault_policy=FaultPolicy(),
            chaos=ChaosPlan([
                Fault("exit", task_index=0, times=1),
                Fault("raise", task_index=1, times=2),
            ]),
        ) as ctx:
            got = sharded_pla(ss, ctx=ctx)
            assert ctx.pool.faults_injected >= 2
        assert got.modularity == ref.modularity
        assert np.array_equal(got.labels, ref.labels)


# ---------------------------------------------------------------------------
# Memory budget + cost model
# ---------------------------------------------------------------------------
class TestBudget:
    def test_admit_refuses_in_core(self, rmat10, tmp_path):
        budget = MemoryBudget(in_core_nbytes(rmat10) // 4)
        with pytest.raises(MemoryBudgetExceeded):
            budget.admit(in_core_nbytes(rmat10), "in-core CSR")

    def test_driver_refuses_oversized_shard(self, rmat10, tmp_path):
        ss = build_shard_set(rmat10, tmp_path / "s", k=2)
        with pytest.raises(MemoryBudgetExceeded):
            BSPDriver(ss, mem_budget=MemoryBudget(1024))

    def test_sharded_run_fits_where_in_core_refused(self, rmat10, tmp_path):
        cap = in_core_nbytes(rmat10)  # < in-core + working set, > one shard
        ss = build_shard_set(rmat10, tmp_path / "s", mem_budget=cap)
        assert ss.k == recommend_shards(in_core_nbytes(rmat10), cap)
        assert ss.largest_shard_bytes < cap
        drv = BSPDriver(ss, mem_budget=MemoryBudget(cap))
        got = sharded_msbfs(ss, [0], driver=drv)
        assert np.array_equal(got.distances, msbfs(rmat10, [0]).distances)
        assert drv.metrics()["n_supersteps"] > 0

    def test_recommend_shards_properties(self):
        assert recommend_shards(0, 100) == 1
        assert recommend_shards(100, 10**9) == 1
        k = recommend_shards(1 << 30, 64 << 20)
        assert k > 1
        # monotone: a tighter budget never wants fewer shards
        assert recommend_shards(1 << 30, 32 << 20) >= k
        with pytest.raises(ValueError):
            recommend_shards(100, 0)

    def test_page_in_cost_recorded(self):
        cm = CostModel()
        cm.page_in(10_000)  # 3 pages
        assert cm.parallel_work == 3 * cm.machine.t_page_in
        before = cm.span
        cm.page_in(0)
        assert cm.span == before

    def test_superstep_metrics_ledger(self, karate, tmp_path):
        ss = build_shard_set(karate, tmp_path / "s", k=2)
        drv = BSPDriver(ss)
        sharded_msbfs(ss, [0], driver=drv)
        m = drv.metrics()
        assert m["k_shards"] == 2
        assert m["n_supersteps"] == len(m["supersteps"])
        assert m["boundary_bytes_out"] > 0
        assert m["boundary_bytes_in"] > 0
        assert m["peak_rss_bytes"] > 0
        phases = [s["phase"] for s in m["supersteps"]]
        assert any("msbfs" in p for p in phases)


# ---------------------------------------------------------------------------
# CLI round-trip
# ---------------------------------------------------------------------------
class TestCli:
    def test_build_info_verify_run(self, karate, tmp_path, capsys):
        gpath = tmp_path / "karate.npz"
        from repro.graph import io as graph_io

        graph_io.save_npz(karate, gpath)
        root = tmp_path / "ss"
        assert cli_main(["shard", "build", str(gpath), "-o", str(root),
                         "-k", "3"]) == 0
        capsys.readouterr()  # drop build output
        assert cli_main(["shard", "info", str(root), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["k"] == 3
        assert cli_main(["shard", "verify", str(root), "--deep"]) == 0
        metrics = tmp_path / "m.json"
        assert cli_main(["shard", "run", str(root),
                         "--algo", "msbfs,components,pla",
                         "--sources", "0,5,33",
                         "--mem-budget", "64M",
                         "--metrics", str(metrics)]) == 0
        out = json.loads(metrics.read_text())
        ref = msbfs(karate, [0, 5, 33])
        assert out["algos"]["msbfs"]["checksum"] == int(
            ref.distances.astype(np.int64).sum()
        )
        assert out["algos"]["pla"]["modularity"] == pla(
            karate, multilevel=True
        ).modularity
        assert out["metrics"]["n_supersteps"] > 0

    def test_cli_verify_fails_on_corruption(self, karate, tmp_path):
        ss = build_shard_set(karate, tmp_path / "s", k=2)
        blob = bytearray(ss.shard_path(0).read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        ss.shard_path(0).write_bytes(bytes(blob))
        assert cli_main(["shard", "verify", str(ss.root)]) == 1

    def test_cli_verify_names_corrupt_checkpoint(self, karate, tmp_path,
                                                 capsys):
        ss = build_shard_set(karate, tmp_path / "s", k=2)
        path = TestVerify._leave_checkpoint(ss)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert cli_main(["shard", "verify", str(ss.root)]) == 1
        assert str(path) in capsys.readouterr().out

    def test_cli_build_mem_budget_sizing(self, rmat10, tmp_path):
        gpath = tmp_path / "g.npz"
        from repro.graph import io as graph_io

        graph_io.save_npz(rmat10, gpath)
        root = tmp_path / "ss"
        cap = in_core_nbytes(rmat10)
        assert cli_main(["shard", "build", str(gpath), "-o", str(root),
                         "--mem-budget", str(cap)]) == 0
        assert open_shard_set(root).k == recommend_shards(
            in_core_nbytes(rmat10), cap
        )


# ---------------------------------------------------------------------------
# Serve registry admission
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_load_shard_set_by_manifest_bytes(self, karate, tmp_path):
        from repro.serve.registry import GraphRegistry

        ss = build_shard_set(karate, tmp_path / "s", k=3)
        with GraphRegistry() as reg:
            entry = reg.load(str(ss.root), name="karate")
            assert entry.shards == 3
            assert entry.graph.offsets.tobytes() == karate.offsets.tobytes()
            doc = entry.describe()
            assert doc["shards"] == 3

    def test_admission_refused_before_stitch(self, karate, tmp_path):
        from repro.errors import AdmissionDenied
        from repro.serve.registry import GraphRegistry

        ss = build_shard_set(karate, tmp_path / "s", k=2)
        with GraphRegistry(max_bytes=64) as reg:
            with pytest.raises(AdmissionDenied, match="manifest total"):
                reg.load(str(ss.root))
            assert reg.names() == []


# ---------------------------------------------------------------------------
# Tier-1 smoke benchmark (scale-10 variant of the shard_full gate)
# ---------------------------------------------------------------------------
def test_shard_scale_smoke(tmp_path):
    import sys

    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                    "benchmarks"))
    from _common import write_result_json

    g = rmat(10, 8.0, rng=np.random.default_rng(22))
    ss = build_shard_set(g, tmp_path / "s", k=4)
    drv = BSPDriver(ss, mem_budget=MemoryBudget(256 << 20))
    got = sharded_msbfs(ss, [0, 1, 2, 3], driver=drv)
    ref = msbfs(g, [0, 1, 2, 3])
    assert np.array_equal(got.distances, ref.distances)
    m = drv.metrics()
    write_result_json("shard_scale_smoke", {
        "scale": 10,
        "edge_factor": 8.0,
        "k_shards": ss.k,
        "edge_cut": ss.edge_cut,
        "bit_identical": True,
        "metrics": m,
    })
    assert m["peak_rss_bytes"] > 0
