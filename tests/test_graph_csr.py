"""Unit tests for the CSR graph representation and builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphStructureError
from repro.graph import (
    Graph,
    from_edge_array,
    from_edge_list,
    induced_subgraph,
    compress_vertices,
)
from repro.graph.csr import EdgeSubsetView

from tests.conftest import random_gnm


class TestConstruction:
    def test_basic_sizes(self, triangle_plus_tail):
        g = triangle_plus_tail
        assert g.n_vertices == 4
        assert g.n_edges == 4
        assert g.n_arcs == 8
        assert not g.directed
        assert not g.is_weighted

    def test_neighbors_sorted_views(self, triangle_plus_tail):
        g = triangle_plus_tail
        assert g.neighbors(2).tolist() == [0, 1, 3]
        assert g.neighbors(3).tolist() == [2]
        # neighbors() returns a view, not a copy
        assert g.neighbors(2).base is g.targets

    def test_degrees(self, triangle_plus_tail):
        assert triangle_plus_tail.degrees().tolist() == [2, 2, 3, 1]
        assert triangle_plus_tail.degree(2) == 3

    def test_has_edge(self, triangle_plus_tail):
        g = triangle_plus_tail
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 3)

    def test_self_loops_dropped(self):
        g = from_edge_list([(0, 0), (0, 1), (1, 1)])
        assert g.n_edges == 1

    def test_duplicate_edges_deduped(self):
        g = from_edge_list([(0, 1), (1, 0), (0, 1)])
        assert g.n_edges == 1
        assert g.n_arcs == 2

    def test_directed_dedupe_keeps_antiparallel(self):
        g = from_edge_list([(0, 1), (1, 0)], directed=True)
        assert g.n_edges == 2

    def test_empty_graph(self):
        g = from_edge_list([], n_vertices=5)
        assert g.n_vertices == 5
        assert g.n_edges == 0
        assert g.neighbors(4).shape[0] == 0

    def test_zero_vertex_graph(self):
        g = from_edge_list([], n_vertices=0)
        assert g.n_vertices == 0

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphStructureError):
            from_edge_array(2, np.asarray([0]), np.asarray([5]))

    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphStructureError):
            from_edge_array(3, np.asarray([-1]), np.asarray([1]))

    def test_vertex_bounds_checked(self, triangle_plus_tail):
        with pytest.raises(GraphStructureError):
            triangle_plus_tail.neighbors(4)
        with pytest.raises(GraphStructureError):
            triangle_plus_tail.degree(-1)

    def test_mismatched_weights_rejected(self):
        with pytest.raises(GraphStructureError):
            from_edge_array(
                3,
                np.asarray([0, 1]),
                np.asarray([1, 2]),
                weights=np.asarray([1.0]),
            )


class TestEdgeIds:
    def test_arc_edge_ids_pair_up(self, triangle_plus_tail):
        g = triangle_plus_tail
        eids = g.arc_edge_ids
        # every edge id appears on exactly two arcs
        _, counts = np.unique(eids, return_counts=True)
        assert (counts == 2).all()

    def test_edge_endpoints_canonical(self, triangle_plus_tail):
        u, v = triangle_plus_tail.edge_endpoints()
        assert (u <= v).all()
        pairs = set(zip(u.tolist(), v.tolist()))
        assert pairs == {(0, 1), (0, 2), (1, 2), (2, 3)}

    def test_edge_endpoints_consistent_with_arcs(self):
        g = random_gnm(40, 120, seed=7)
        u, v = g.edge_endpoints()
        for eid in range(g.n_edges):
            assert g.has_edge(int(u[eid]), int(v[eid]))

    def test_directed_edge_ids_are_arcs(self):
        g = from_edge_list([(0, 1), (1, 2)], directed=True)
        assert g.arc_edge_ids.tolist() == [0, 1]

    def test_weights_roundtrip(self, weighted_graph):
        g = weighted_graph
        assert g.edge_weight(1, 3) == 0.5
        assert g.edge_weight(3, 1) == 0.5
        w = g.edge_weights()
        assert w.shape[0] == g.n_edges
        assert sorted(w.tolist()) == [0.5, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_edge_weight_missing_raises(self, triangle_plus_tail):
        with pytest.raises(GraphStructureError):
            triangle_plus_tail.edge_weight(0, 3)


class TestDerivedGraphs:
    def test_reverse_directed(self):
        g = from_edge_list([(0, 1), (1, 2), (0, 2)], directed=True)
        r = g.reverse()
        assert r.has_edge(1, 0) and r.has_edge(2, 1) and r.has_edge(2, 0)
        assert not r.has_edge(0, 1)

    def test_reverse_undirected_is_self(self, triangle_plus_tail):
        assert triangle_plus_tail.reverse() is triangle_plus_tail

    def test_as_undirected(self):
        g = from_edge_list([(0, 1), (1, 0), (1, 2)], directed=True)
        u = g.as_undirected()
        assert not u.directed
        assert u.n_edges == 2  # antiparallel pair collapses

    def test_induced_subgraph(self, two_triangles_bridge):
        sub, ids = induced_subgraph(two_triangles_bridge, [0, 1, 2])
        assert sub.n_vertices == 3
        assert sub.n_edges == 3
        assert ids.tolist() == [0, 1, 2]

    def test_induced_subgraph_relabels(self, two_triangles_bridge):
        sub, ids = induced_subgraph(two_triangles_bridge, [3, 5, 4])
        assert sub.n_vertices == 3
        assert sub.n_edges == 3  # the second triangle
        assert ids.tolist() == [3, 4, 5]

    def test_compress_vertices_merges_weights(self):
        g = from_edge_list([(0, 1, 1.0), (0, 2, 2.0), (1, 2, 4.0), (2, 3, 8.0)])
        labels = np.asarray([0, 0, 1, 1])
        c = compress_vertices(g, labels)
        assert c.n_vertices == 2
        assert c.n_edges == 1
        # 0-2 and 1-2 arcs cross the cut: weight 2 + 4 = 6
        assert c.edge_weight(0, 1) == 6.0

    def test_compress_to_single_vertex(self, triangle_plus_tail):
        c = compress_vertices(triangle_plus_tail, np.zeros(4, dtype=np.int64))
        assert c.n_vertices == 1
        assert c.n_edges == 0


class TestEdgeSubsetView:
    def test_deactivate_hides_edge(self, triangle_plus_tail):
        g = triangle_plus_tail
        view = g.view()
        u, v = g.edge_endpoints()
        eid = next(
            i for i in range(g.n_edges) if {int(u[i]), int(v[i])} == {2, 3}
        )
        view.deactivate(eid)
        assert view.n_active_edges == 3
        assert 3 not in view.active_neighbors(2).tolist()
        assert view.active_degree(3) == 0

    def test_double_delete_raises(self, triangle_plus_tail):
        view = triangle_plus_tail.view()
        view.deactivate(0)
        with pytest.raises(GraphStructureError):
            view.deactivate(0)

    def test_reactivate(self, triangle_plus_tail):
        view = triangle_plus_tail.view()
        view.deactivate(1)
        view.reactivate(1)
        assert view.n_active_edges == triangle_plus_tail.n_edges

    def test_bad_mask_length_rejected(self, triangle_plus_tail):
        with pytest.raises(GraphStructureError):
            EdgeSubsetView(triangle_plus_tail, np.ones(2, dtype=bool))

    def test_view_does_not_mutate_graph(self, triangle_plus_tail):
        view = triangle_plus_tail.view()
        view.deactivate(0)
        assert triangle_plus_tail.n_edges == 4


class TestNetworkxInterop:
    def test_roundtrip_undirected(self):
        nx = pytest.importorskip("networkx")
        from repro.graph import from_networkx, to_networkx

        g0 = nx.karate_club_graph()
        g = from_networkx(g0)
        assert g.n_vertices == g0.number_of_nodes()
        assert g.n_edges == g0.number_of_edges()
        g1 = to_networkx(g)
        assert set(map(frozenset, g1.edges())) == set(map(frozenset, g0.edges()))

    def test_roundtrip_directed(self):
        nx = pytest.importorskip("networkx")
        from repro.graph import from_networkx

        g0 = nx.gn_graph(30, seed=3)
        g = from_networkx(g0)
        assert g.directed
        assert g.n_edges == g0.number_of_edges()
