"""Shared fixtures: small canonical graphs and random-graph helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import from_edge_list


@pytest.fixture
def triangle_plus_tail():
    """Triangle 0-1-2 with a tail 2-3."""
    return from_edge_list([(0, 1), (1, 2), (2, 0), (2, 3)])


@pytest.fixture
def two_triangles_bridge():
    """Two triangles joined by a single bridge edge (2, 3)."""
    return from_edge_list(
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
    )


@pytest.fixture
def disconnected_graph():
    """A path 0-1-2, an edge 3-4, and isolated vertex 5."""
    return from_edge_list([(0, 1), (1, 2), (3, 4)], n_vertices=6)


@pytest.fixture
def weighted_graph():
    """Small weighted graph with distinct weights."""
    return from_edge_list(
        [
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 3, 3.0),
            (3, 0, 4.0),
            (0, 2, 5.0),
            (1, 3, 0.5),
        ]
    )


def random_gnm(n: int, m: int, seed: int, *, directed: bool = False):
    """Random simple G(n, m) graph via rejection-free sampling."""
    rng = np.random.default_rng(seed)
    max_m = n * (n - 1) // (1 if directed else 2)
    m = min(m, max_m)
    seen = set()
    src, dst = [], []
    while len(src) < m:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v:
            continue
        key = (u, v) if directed else (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        src.append(key[0] if not directed else u)
        dst.append(key[1] if not directed else v)
    from repro.graph import builder

    return builder.from_edge_array(
        n,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        directed=directed,
    )
