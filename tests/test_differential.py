"""Differential correctness harness: smoke run, self-test, CLI front-end.

Tier-1 runs a budget-capped smoke corpus plus the fault-injection
self-test (an intentionally corrupted kernel output must be caught and
shrunk to a tiny reproducer).  The full matrix — big corpus, every
backend × representation combination — is behind the ``fuzz_full``
marker: ``pytest -m fuzz_full tests/test_differential.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.datasets.karate import karate_club
from repro.qa import (
    CHECKS,
    FAULTS,
    REPRESENTATIONS,
    CorpusGraph,
    corpus,
    run_differential,
    shrink,
)
from repro.qa.differential import build_representation


# ---------------------------------------------------------------------------
# Corpus and representation builders
# ---------------------------------------------------------------------------
def test_corpus_is_deterministic():
    a = corpus(3, 30)
    b = corpus(3, 30)
    assert a == b
    assert len(a) == 30
    names = [g.name for g in a]
    assert len(set(names)) == len(names)


def test_corpus_covers_pathological_shapes():
    names = {g.name for g in corpus(0)}
    for required in ("empty_0", "isolated_5", "self_loop_heavy",
                     "multi_component", "tie_weights", "karate"):
        assert required in names


@pytest.mark.parametrize("representation", REPRESENTATIONS)
def test_every_representation_converges_to_same_csr(representation):
    for item in corpus(1, 20):
        if item.directed and representation != "csr":
            continue
        g = build_representation(item, representation, seed=1)
        ref = item.ref()
        assert g.n_vertices == ref.n
        assert g.n_edges == ref.m
        got = sorted(zip(*[a.tolist() for a in g.edge_endpoints()]))
        exp = sorted((u, v) for u, v, _ in ref.edges)
        assert got == exp


def test_build_representation_is_deterministic():
    item = corpus(0)[11]  # karate
    a = build_representation(item, "hybrid", seed=7)
    b = build_representation(item, "hybrid", seed=7)
    assert np.array_equal(a.offsets, b.offsets)
    assert np.array_equal(a.targets, b.targets)


# ---------------------------------------------------------------------------
# The differential run itself
# ---------------------------------------------------------------------------
def test_smoke_corpus_agrees_with_oracles():
    report = run_differential(
        0, n_graphs=16, budget=60.0, backends=("serial", "thread"),
        artifact_dir=None,
    )
    assert report.ok, report.summary()
    assert report.n_runs > 100
    assert report.n_graphs == 16


def test_unknown_check_rejected():
    with pytest.raises(ValueError, match="unknown check"):
        run_differential(0, n_graphs=1, checks=("nope",), artifact_dir=None)


def test_budget_stops_corpus_early():
    report = run_differential(0, n_graphs=56, budget=0.0, artifact_dir=None,
                              backends=("serial",))
    assert report.n_graphs == 0
    assert report.ok


# ---------------------------------------------------------------------------
# Fault-injection self-test: a planted bug must be caught AND shrunk
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("fault", sorted(FAULTS))
def test_injected_fault_is_caught_and_shrunk(fault, tmp_path):
    check_name, _ = FAULTS[fault]
    report = run_differential(
        0, n_graphs=14, backends=("serial",), representations=("csr",),
        checks=(check_name,), fault=fault, artifact_dir=tmp_path,
        max_failures=1,
    )
    assert not report.ok
    failure = report.failures[0]
    assert failure.check == check_name
    # Acceptance: the shrinker reduces a planted fault to a tiny graph.
    assert failure.minimal is not None
    assert failure.minimal.n <= 12
    assert failure.artifact is not None and failure.artifact.exists()
    text = failure.artifact.read_text()
    assert "# differential failure" in text
    # Every non-comment line is a parseable edge of the minimal graph.
    edges = [ln.split() for ln in text.splitlines() if not ln.startswith("#")]
    assert len(edges) == len(failure.minimal.edges)


def test_shrink_preserves_failure_predicate():
    item = CorpusGraph("t", 6, tuple((i, j) for i in range(6)
                                     for j in range(i + 1, 6)))
    # Predicate: graph still contains an edge touching vertex labelled 0.
    pred = lambda g: any(0 in e[:2] for e in g.edges)
    minimal = shrink(item, pred)
    assert pred(minimal)
    assert minimal.n <= 2
    assert len(minimal.edges) == 1


# ---------------------------------------------------------------------------
# CLI front door (the satellite smoke invocation of `repro check`)
# ---------------------------------------------------------------------------
def test_cli_check_smoke(capsys):
    rc = cli_main(["check", "--seed", "0", "--graphs", "12", "--budget", "60",
                   "--backends", "serial", "--no-artifacts"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "failures=0" in out
    assert "OK:" in out


def test_cli_check_fault_fails(tmp_path, capsys):
    rc = cli_main(["check", "--seed", "0", "--graphs", "3",
                   "--backends", "serial", "--representations", "csr",
                   "--checks", "bfs", "--fault", "bfs_plus_one",
                   "--artifacts", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "FAIL bfs" in out
    assert "reproducer:" in out
    assert list(tmp_path.glob("*.edgelist"))


def test_cli_check_unknown_fault(capsys):
    rc = cli_main(["check", "--fault", "not_a_fault", "--no-artifacts"])
    assert rc == 2
    assert "unknown fault" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Oracle spot checks against independently known values
# ---------------------------------------------------------------------------
def test_oracles_match_known_karate_facts():
    from repro.qa import oracles

    g = karate_club()
    u, v = g.edge_endpoints()
    ref = oracles.RefGraph(34, list(zip(u.tolist(), v.tolist())))
    assert ref.m == 78
    cc = oracles.connected_components(ref)
    assert set(cc) == {0}
    bc = oracles.brandes_betweenness(ref)
    # Vertex 0 (the instructor) has the famous top betweenness 231.07...
    assert max(range(34), key=lambda i: bc[i]) == 0
    assert bc[0] == pytest.approx(231.0714285714286)
    levels = oracles.bfs_levels(ref, 0)
    assert max(levels) == 3  # karate has eccentricity 3 from vertex 0


# ---------------------------------------------------------------------------
# Full matrix (slow): the acceptance-criteria run
# ---------------------------------------------------------------------------
@pytest.mark.fuzz_full
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_full_matrix_all_backends_all_representations(seed, tmp_path):
    report = run_differential(seed, n_graphs=56, artifact_dir=tmp_path)
    assert report.ok, report.summary()
    assert report.n_graphs == 56
    expected_cells = len(CHECKS) * len(REPRESENTATIONS)
    assert report.n_runs > expected_cells  # sanity: matrix actually ran
