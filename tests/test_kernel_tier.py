"""Kernel-tier dispatch and compiled-kernel parity (DESIGN §9).

Two layers of coverage, both meaningful without numba installed:

* **dispatch semantics** — tier resolution order (explicit > ambient
  ``use_tier`` > ``REPRO_KERNEL_TIER`` > auto), the size crossover, the
  one-time missing-numba fallback warning, dtype fall-through, and the
  observability plumbing (``ParallelContext.tier_dispatches``,
  ``RunResult.kernel_tiers``, the ``--kernel-tier`` CLI flag).  Where a
  test needs the compiled branch taken, ``HAVE_NUMBA`` is monkeypatched
  on: the "compiled" kernels are then the raw interpreted bodies, which
  execute identically (numba compiles them without changing semantics).
* **bit-identity of the kernel bodies** — every ``_py_*`` body in
  :mod:`repro.kernels._compiled` is compared against its numpy
  reference on randomized inputs with ``np.array_equal`` (no float
  tolerance).  These bodies are exactly what numba jits, so this is
  the numba-free half of the parity contract; the jitted half runs in
  ``test_backend_parity.py::test_kernel_tier_parity`` where numba is
  present.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro.datasets.karate import karate_club
from repro.generators.rmat import rmat
from repro.kernels import _compiled, dispatch
from repro.kernels.segments import (
    _intersect_sorted_segments_compiled,
    _intersect_sorted_segments_numpy,
    _segment_argmax_numpy,
    _segment_maxes_numpy,
    _segment_sums_numpy,
    group_offsets,
    segment_sums,
)
from repro.parallel.runtime import ParallelContext


@pytest.fixture
def fresh_dispatch(monkeypatch):
    """Reset dispatch module state that tests poke at."""
    monkeypatch.setattr(dispatch, "_WARNED_MISSING", False)
    monkeypatch.setattr(dispatch, "_crossover_override", None)
    monkeypatch.delenv("REPRO_KERNEL_TIER", raising=False)
    monkeypatch.delenv("REPRO_KERNEL_CROSSOVER", raising=False)
    return dispatch


@pytest.fixture
def fake_numba(monkeypatch, fresh_dispatch):
    """Pretend numba is importable: the njit aliases stay the raw
    interpreted bodies, so compiled-branch code paths execute with
    identical semantics (just slower)."""
    monkeypatch.setattr(_compiled, "HAVE_NUMBA", True)
    monkeypatch.setattr(dispatch, "_WARMED", True)  # bodies need no JIT
    return fresh_dispatch


# ---------------------------------------------------------------------------
# Tier resolution
# ---------------------------------------------------------------------------
def test_resolve_explicit_numpy(fresh_dispatch):
    assert dispatch.resolve_tier("numpy") == "numpy"
    assert dispatch.resolve_tier("numpy", size=1 << 30) == "numpy"


def test_resolve_invalid_tier_raises(fresh_dispatch):
    with pytest.raises(ValueError, match="kernel tier"):
        dispatch.resolve_tier("jit")


def test_auto_without_numba_is_numpy(fresh_dispatch, monkeypatch):
    monkeypatch.setattr(_compiled, "HAVE_NUMBA", False)
    assert dispatch.resolve_tier(None) == "numpy"
    assert dispatch.resolve_tier("auto", size=1 << 30) == "numpy"


def test_explicit_compiled_without_numba_warns_once(fresh_dispatch, monkeypatch):
    monkeypatch.setattr(_compiled, "HAVE_NUMBA", False)
    with pytest.warns(RuntimeWarning, match="numba is not installed"):
        assert dispatch.resolve_tier("compiled") == "numpy"
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second request: no new warning
        assert dispatch.resolve_tier("compiled") == "numpy"


def test_auto_crossover(fake_numba):
    assert dispatch.resolve_tier("auto", size=dispatch.crossover() - 1) == "numpy"
    assert dispatch.resolve_tier("auto", size=dispatch.crossover()) == "compiled"
    assert dispatch.resolve_tier("auto", size=None) == "compiled"
    dispatch.set_crossover(10)
    assert dispatch.crossover() == 10
    assert dispatch.resolve_tier("auto", size=11) == "compiled"
    dispatch.set_crossover(None)
    assert dispatch.crossover() == dispatch.DEFAULT_CROSSOVER


def test_crossover_env(fake_numba, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_CROSSOVER", "100")
    assert dispatch.crossover() == 100
    monkeypatch.setenv("REPRO_KERNEL_CROSSOVER", "not-an-int")
    with pytest.warns(RuntimeWarning, match="REPRO_KERNEL_CROSSOVER"):
        assert dispatch.crossover() == dispatch.DEFAULT_CROSSOVER


def test_env_var_tier(fake_numba, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_TIER", "numpy")
    assert dispatch.resolve_tier(None, size=1 << 30) == "numpy"
    monkeypatch.setenv("REPRO_KERNEL_TIER", "compiled")
    assert dispatch.resolve_tier(None, size=1) == "compiled"


def test_use_tier_ambient(fake_numba, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_TIER", "compiled")
    with dispatch.use_tier("numpy"):  # ambient beats env
        assert dispatch.resolve_tier(None, size=1 << 30) == "numpy"
        with dispatch.use_tier("compiled"):
            assert dispatch.resolve_tier(None, size=1) == "compiled"
        assert dispatch.resolve_tier(None) == "numpy"
    with pytest.raises(ValueError):
        dispatch.use_tier("jit")


def test_registry_covers_expected_kernels():
    names = dispatch.kernels_registered()
    for expected in (
        "segment_sums", "segment_maxes", "segment_argmax",
        "intersect_sorted_segments", "pla_sweep", "msbfs_frontier",
        "brandes_accumulate",
    ):
        assert expected in names


def test_call_unsupported_dtype_falls_through(fake_numba):
    # int32 values are outside the compiled specialization set: the
    # compiled variant declines and the reference answers — with its
    # int64-widened output dtype either way.
    values = np.asarray([1, 2, 3, 4], dtype=np.int32)
    offsets = np.asarray([0, 2, 4], dtype=np.int64)
    out = segment_sums(values, offsets, tier="compiled")
    assert out.dtype == np.int64
    assert np.array_equal(out, [3, 7])


# ---------------------------------------------------------------------------
# Kernel-body bit-identity vs the numpy references
# ---------------------------------------------------------------------------
def _random_segments(rng, n_seg=64, n_vals=512, dtype=np.float64):
    cuts = np.sort(rng.integers(0, n_vals + 1, size=n_seg - 1))
    offsets = np.concatenate(([0], cuts, [n_vals])).astype(np.int64)
    if dtype == np.float64:
        values = rng.random(n_vals)
        # duplicated values exercise the argmax first-index tie-break
        values[rng.integers(0, n_vals, size=n_vals // 4)] = 0.5
    else:
        values = rng.integers(-1000, 1000, size=n_vals).astype(dtype)
    return values, offsets


@pytest.mark.parametrize("dtype", [np.float64, np.int64])
def test_segment_sums_body_parity(dtype):
    rng = np.random.default_rng(0)
    values, offsets = _random_segments(rng, dtype=dtype)
    ref = _segment_sums_numpy(values, offsets)
    out = np.zeros(offsets.shape[0] - 1, dtype=dtype)
    _compiled._py_segment_sums_fill(values, offsets, out)
    assert out.dtype == ref.dtype
    assert np.array_equal(out, ref)


@pytest.mark.parametrize("dtype", [np.float64, np.int64])
def test_segment_maxes_body_parity(dtype):
    rng = np.random.default_rng(1)
    values, offsets = _random_segments(rng, dtype=dtype)
    ref = _segment_maxes_numpy(values, offsets)
    out = np.full(offsets.shape[0] - 1, -np.inf, dtype=np.float64)
    _compiled._py_segment_maxes_fill(values, offsets, out)
    assert np.array_equal(out, ref)


def test_segment_argmax_body_parity():
    rng = np.random.default_rng(2)
    values, offsets = _random_segments(rng)
    ref = _segment_argmax_numpy(values, offsets)
    out = np.full(offsets.shape[0] - 1, -1, dtype=np.int64)
    _compiled._py_segment_argmax_fill(values, offsets, out)
    assert np.array_equal(out, ref)


def test_intersect_body_parity():
    g = rmat(9, 8.0, rng=np.random.default_rng(3)).as_undirected()
    u, v = g.edge_endpoints()
    ref = _intersect_sorted_segments_numpy(g.offsets, g.targets, u, v)
    got = _intersect_sorted_segments_compiled(g.offsets, g.targets, u, v)
    for a, b in zip(got, ref):
        assert np.array_equal(a, b)


def test_intersect_empty_pairs():
    offsets = np.asarray([0, 2, 4], dtype=np.int64)
    targets = np.asarray([0, 1, 0, 1], dtype=np.int64)
    none = np.empty(0, dtype=np.int64)
    ref = _intersect_sorted_segments_numpy(offsets, targets, none, none)
    got = _intersect_sorted_segments_compiled(offsets, targets, none, none)
    for a, b in zip(got, ref):
        assert np.array_equal(a, b)


def test_sweep_best_moves_body_parity():
    from repro.community.pla import (
        _best_moves_compiled,
        _best_moves_numpy,
        _loopless_arcs,
        _vertex_strengths,
    )

    for seed in (0, 7):
        g = rmat(8, 8.0, rng=np.random.default_rng(seed)).as_undirected()
        rng = np.random.default_rng(seed + 100)
        # random labels (not just singletons) exercise own-label runs,
        # merged groups and the no-candidate -1 sentinel
        labels = rng.integers(0, g.n_vertices, size=g.n_vertices)
        labels = np.unique(labels, return_inverse=True)[1].astype(np.int64)
        sv = _vertex_strengths(g)
        src, tgt, w = _loopless_arcs(g)
        W = float(g.edge_weights().sum())
        S = np.bincount(labels, weights=sv, minlength=g.n_vertices)
        ref = _best_moves_numpy(labels, sv, S, W, src, tgt, w)
        got = _best_moves_compiled(labels, sv, S, W, src, tgt, w)
        assert got is not NotImplemented
        for a, b in zip(got, ref):
            assert np.array_equal(a, b)


def test_sweep_best_moves_declines_unsorted_src():
    from repro.community.pla import _best_moves_compiled

    src = np.asarray([1, 0], dtype=np.int64)
    tgt = np.asarray([0, 1], dtype=np.int64)
    one = np.ones(2, dtype=np.float64)
    labels = np.asarray([0, 1], dtype=np.int64)
    out = _best_moves_compiled(labels, one, one, 1.0, src, tgt, one)
    assert out is NotImplemented


def test_msbfs_step_bodies_parity():
    from repro.kernels.bfs import msbfs

    g = rmat(8, 8.0, rng=np.random.default_rng(4)).as_undirected()
    n = g.n_vertices
    srcs = np.arange(0, n, 11, dtype=np.int64)[:8]
    ref = msbfs(g, srcs).distances

    # Drive the same traversal with the step bodies, replaying msbfs's
    # direction decisions exactly.
    k = srcs.shape[0]
    dist = np.full((k, n), -1, dtype=np.int32)
    df = dist.reshape(-1)
    lanes = np.arange(k, dtype=np.int64)
    dist[lanes, srcs] = 0
    verts = srcs.copy()
    degs = g.degrees()
    todo = int(k * g.n_arcs - degs[srcs].sum())
    claims = np.empty(k * n, dtype=np.int64)
    level = 0
    directions = []
    while verts.shape[0]:
        bottom_up = todo < int(degs.take(verts).sum())
        directions.append(bottom_up)
        if bottom_up:
            cnt = _compiled._py_msbfs_bottomup(
                g.offsets, g.targets, df, n, level, claims
            )
        else:
            cnt = _compiled._py_msbfs_topdown(
                g.offsets, g.targets, df, verts, lanes * n, level, claims
            )
        if cnt == 0:
            break
        nxt = np.sort(claims[:cnt])
        lanes = nxt // n
        verts = nxt - lanes * n
        todo -= int(degs.take(verts).sum())
        level += 1
    assert any(directions) and not all(directions), (
        "fixture graph must exercise both directions"
    )
    assert np.array_equal(ref, dist)


def test_brandes_accumulate_body_parity():
    rng = np.random.default_rng(5)
    m, nflat, ne = 700, 300, 120
    u = rng.integers(0, nflat, m)
    v = rng.integers(0, nflat, m)
    e = rng.integers(0, ne, m)
    w = rng.random(m)
    inv = rng.random(nflat)
    delta_ref = rng.random(nflat)
    ep_ref = rng.random(ne)
    delta_got, ep_got = delta_ref.copy(), ep_ref.copy()

    contrib_ref = w * inv[v] * (1.0 + delta_ref[v])
    np.add.at(delta_ref, u, contrib_ref)
    np.add.at(ep_ref, e, contrib_ref)

    contrib_got = np.empty(m)
    _compiled._py_brandes_accumulate(
        u, v, e, w, inv, delta_got, ep_got, contrib_got
    )
    assert np.array_equal(contrib_got, contrib_ref)
    assert np.array_equal(delta_got, delta_ref)
    assert np.array_equal(ep_got, ep_ref)


# ---------------------------------------------------------------------------
# End-to-end: forced compiled tier == numpy tier (interpreted bodies)
# ---------------------------------------------------------------------------
ALGOS = [
    ("betweenness", (), {}),
    ("closeness", (), {}),
    ("msbfs", ([0, 5, 33],), {}),
    ("pla", (), {"multilevel": True}),
]


@pytest.mark.parametrize("name,operands,kwargs", ALGOS)
def test_forced_compiled_tier_end_to_end(fake_numba, name, operands, kwargs):
    g = karate_club()
    ref = repro.run(name, g, *operands, kernel_tier="numpy", **kwargs)
    got = repro.run(name, g, *operands, kernel_tier="compiled", **kwargs)
    assert got.kernel_tiers.get("compiled", 0) > 0
    assert got.trace.structure() == ref.trace.structure()
    for attr in ("distances", "labels", "vertex"):
        if hasattr(ref.value, attr):
            a = np.asarray(getattr(ref.value, attr))
            b = np.asarray(getattr(got.value, attr))
            assert np.array_equal(a, b), f"{name}.{attr} diverges"
    if isinstance(ref.value, np.ndarray):
        assert np.array_equal(ref.value, got.value)


def test_triangle_counts_forced_compiled(fake_numba):
    from repro.metrics.clustering import triangle_counts

    g = rmat(8, 8.0, rng=np.random.default_rng(6)).as_undirected()
    with dispatch.use_tier("numpy"):
        ref = triangle_counts(g)
    with dispatch.use_tier("compiled"):
        got = triangle_counts(g)
    assert np.array_equal(ref, got)


# ---------------------------------------------------------------------------
# Observability + configuration plumbing
# ---------------------------------------------------------------------------
def test_context_rejects_invalid_tier():
    with pytest.raises(ValueError, match="kernel_tier"):
        ParallelContext(1, kernel_tier="jit")


def test_context_counts_tier_dispatches(fresh_dispatch):
    ctx = ParallelContext(1, kernel_tier="numpy")
    try:
        assert ctx.tier_for(10) == "numpy"
        assert ctx.tier_for(10, override="numpy") == "numpy"
        assert ctx.tier_dispatches == {"numpy": 2}
        ctx.reset()
        assert ctx.tier_dispatches == {}
    finally:
        ctx.close()


def test_run_result_reports_tiers(fresh_dispatch):
    g = karate_club()
    res = repro.run("betweenness", g, kernel_tier="numpy")
    assert res.kernel_tiers == {"numpy": 1}
    assert res.to_dict()["kernel_tiers"] == {"numpy": 1}


def test_run_restores_explicit_ctx_tier(fresh_dispatch):
    g = karate_club()
    ctx = ParallelContext(1, kernel_tier="auto")
    try:
        repro.run("degree", g, ctx=ctx, kernel_tier="numpy")
        assert ctx.kernel_tier == "auto"
    finally:
        ctx.close()


def test_cli_accepts_kernel_tier():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["analyze", "g.txt", "--kernel-tier", "compiled"]
    )
    assert args.kernel_tier == "compiled"
    args = parser.parse_args(["check", "--kernel-tier", "numpy"])
    assert args.kernel_tier == "numpy"
    args = parser.parse_args(["profile", "--rmat-scale", "6"])
    assert args.kernel_tier is None


def test_differential_smoke_compiled_tier(fresh_dispatch):
    """`repro check --kernel-tier compiled` path: compiled kernels are
    fuzzed against the pure-Python oracles.  Without numba the tier
    falls back (one warning) and the oracles must still agree."""
    from repro.qa.differential import run_differential

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        report = run_differential(
            seed=0,
            n_graphs=6,
            backends=("serial",),
            representations=("csr",),
            checks=("betweenness", "closeness", "clustering",
                    "pla_multilevel"),
            n_workers=1,
            artifact_dir=None,
            kernel_tier="compiled",
        )
    assert report.ok, report.summary()
    assert report.n_runs > 0


# ---------------------------------------------------------------------------
# Warm-up
# ---------------------------------------------------------------------------
def test_warmup_without_numba_is_noop(fresh_dispatch, monkeypatch):
    monkeypatch.setattr(_compiled, "HAVE_NUMBA", False)
    assert dispatch.warmup(force=True) == 0


@pytest.mark.skipif(
    not dispatch.numba_available(), reason="numba not installed"
)
def test_warmup_compiles_once():
    """Second warm-up is a cache hit: no kernel grows new signatures."""
    assert dispatch.warmup(force=True) > 0
    before = dispatch.signature_counts()
    assert sum(before.values()) > 0
    dispatch.warmup(force=True)
    assert dispatch.signature_counts() == before
