"""Tests for the parallel runtime substrate: cost model, partitioner,
work-stealing simulation, sync counters, and context plumbing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import (
    CostModel,
    MachineModel,
    ParallelContext,
    balanced_chunks,
    chunk_ranges,
    imbalance_factor,
    simulate_work_stealing,
    WorkStealingScheduler,
)
from repro.parallel.partitioner import chunk_work, split_heavy_items
from repro.parallel.sync import AtomicCounter, SyncCounters, CountedLock


class TestCostModel:
    def test_t1_equals_total_work(self):
        cm = CostModel()
        cm.phase(1000, 10)
        cm.serial(100)
        assert cm.modeled_time(1) == pytest.approx(1100 * cm.machine.t_op)

    def test_speedup_monotone_up_to_saturation(self):
        cm = CostModel()
        for _ in range(20):
            cm.phase(50_000, 10)
        s = [cm.speedup(p) for p in (1, 2, 4, 8, 16, 32)]
        assert s[0] == pytest.approx(1.0)
        assert all(b >= a for a, b in zip(s, s[1:]))
        assert s[-1] > 4

    def test_speedup_bounded_by_p(self):
        cm = CostModel()
        cm.phase(10_000, 1)
        for p in (2, 4, 8, 32):
            assert cm.speedup(p) <= p + 1e-9

    def test_serial_fraction_caps_speedup(self):
        cm = CostModel()
        cm.phase(1000, 1)
        cm.serial(1000)  # 50% serial → Amdahl cap of 2
        assert cm.speedup(32) < 2.0

    def test_granularity_caps_speedup(self):
        cm = CostModel()
        cm.phase(1000, 500)  # one huge item dominates
        assert cm.speedup(32) < 2.2

    def test_barriers_penalize_many_small_phases(self):
        fine = CostModel()
        for _ in range(1000):
            fine.phase(100, 1)
        coarse = CostModel()
        coarse.phase(100_000, 1)
        assert coarse.speedup(16) > fine.speedup(16)

    def test_merge_accumulates(self):
        a, b = CostModel(), CostModel()
        a.phase(100, 1)
        b.phase(200, 2)
        b.serial(50)
        b.lock(3)
        a.merge(b)
        assert a.parallel_work == 300
        assert a.serial_work == 50
        assert a.lock_events == 3
        assert a.n_barriers == 2

    def test_phase_run_length_compression(self):
        cm = CostModel()
        for _ in range(100):
            cm.phase(10, 1)
        assert len(cm._phases) == 1
        assert cm.n_barriers == 100

    def test_invalid_inputs(self):
        cm = CostModel()
        with pytest.raises(ValueError):
            cm.phase(-1)
        with pytest.raises(ValueError):
            cm.serial(-1)
        with pytest.raises(ValueError):
            cm.modeled_time(0)

    def test_reset(self):
        cm = CostModel()
        cm.phase(10)
        cm.reset()
        assert cm.total_work == 0
        assert cm.n_barriers == 0

    def test_span_definition(self):
        cm = CostModel()
        cm.phase(100, 7)
        cm.phase(100, 3)
        cm.serial(11)
        assert cm.span == pytest.approx(21)

    def test_summary_keys(self):
        cm = CostModel()
        cm.phase(10)
        s = cm.summary()
        assert {"parallel_work", "serial_work", "span", "barriers",
                "cas_events"} <= set(s)

    def test_flag_sync_cheaper_than_barrier(self):
        barrier = CostModel()
        for _ in range(500):
            barrier.phase(50, 1)
        flags = CostModel()
        for _ in range(500):
            flags.phase(50, 1, flag_sync=True)
        assert flags.modeled_time(16) < barrier.modeled_time(16)
        assert flags.modeled_time(1) == barrier.modeled_time(1)

    def test_cas_cheaper_than_lock(self):
        locks = CostModel()
        locks.phase(1000, 1)
        locks.lock(200)
        cas = CostModel()
        cas.phase(1000, 1)
        cas.cas(200)
        assert cas.modeled_time(32) < locks.modeled_time(32)

    def test_merge_carries_cas_and_flags(self):
        a, b = CostModel(), CostModel()
        b.phase(10, 1, flag_sync=True)
        b.cas(7)
        a.merge(b)
        assert a.cas_events == 7
        assert a.n_barriers == 1


class TestPartitioner:
    def test_chunk_ranges_cover(self):
        chunks = chunk_ranges(10, 3)
        assert chunks == [(0, 4), (4, 7), (7, 10)]

    def test_chunk_ranges_more_workers_than_items(self):
        chunks = chunk_ranges(2, 5)
        sizes = [hi - lo for lo, hi in chunks]
        assert sum(sizes) == 2
        assert len(chunks) == 5

    @given(st.integers(0, 100), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_chunk_ranges_partition_property(self, n, p):
        chunks = chunk_ranges(n, p)
        assert chunks[0][0] == 0 and chunks[-1][1] == n
        for (a, b), (c, d) in zip(chunks, chunks[1:]):
            assert b == c and a <= b and c <= d

    def test_balanced_chunks_skewed(self):
        work = np.asarray([100, 1, 1, 1, 1, 1, 1, 1], dtype=float)
        naive = chunk_ranges(8, 4)
        smart = balanced_chunks(work, 4)
        assert imbalance_factor(work, smart) <= imbalance_factor(work, naive)

    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=60),
        st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_balanced_chunks_partition_property(self, work, p):
        work = np.asarray(work)
        chunks = balanced_chunks(work, p)
        assert len(chunks) == p
        assert chunks[0][0] == 0 and chunks[-1][1] == work.shape[0]
        assert chunk_work(work, chunks).sum() == pytest.approx(work.sum())

    def test_split_heavy_items(self):
        work = np.asarray([1, 50, 2, 80, 3], dtype=float)
        light, heavy = split_heavy_items(work, 10)
        assert light.tolist() == [0, 2, 4]
        assert heavy.tolist() == [1, 3]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            chunk_ranges(5, 0)
        with pytest.raises(ValueError):
            balanced_chunks(np.asarray([-1.0]), 2)


class TestWorkStealing:
    def test_perfect_balance(self):
        stats = simulate_work_stealing(np.ones(64), 8)
        assert stats.makespan == pytest.approx(8.0)
        assert stats.steals == 0

    def test_single_worker(self):
        stats = simulate_work_stealing(np.asarray([3.0, 4.0]), 1)
        assert stats.makespan == 7.0

    def test_skewed_tasks_get_stolen(self):
        costs = np.asarray([100.0] + [1.0] * 7)
        stats = simulate_work_stealing(costs, 8, steal_cost=0.5)
        # the 100-cost task lower-bounds the makespan
        assert 100.0 <= stats.makespan < 107.0

    def test_stealing_beats_static_on_imbalance(self):
        rng = np.random.default_rng(0)
        costs = rng.pareto(1.5, size=200) + 0.1
        stats = simulate_work_stealing(costs, 8)
        static = chunk_work(costs, chunk_ranges(200, 8)).max()
        assert stats.makespan <= static + 1e-9

    def test_makespan_lower_bound(self):
        rng = np.random.default_rng(1)
        costs = rng.uniform(0.5, 2.0, 100)
        stats = simulate_work_stealing(costs, 4)
        assert stats.makespan >= costs.sum() / 4 - 1e-9
        assert stats.makespan >= costs.max() - 1e-9

    def test_empty_tasks(self):
        stats = simulate_work_stealing(np.empty(0), 4)
        assert stats.makespan == 0.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            simulate_work_stealing(np.asarray([-1.0]), 2)

    def test_scheduler_wrapper_runs_all(self):
        sched = WorkStealingScheduler(4)
        items = list(range(10))
        results, stats = sched.run(lambda x: x * x, items, np.ones(10))
        assert results == [x * x for x in items]
        assert stats.total_work == 10.0

    def test_scheduler_mismatched_costs(self):
        sched = WorkStealingScheduler(2)
        with pytest.raises(ValueError):
            sched.run(lambda x: x, [1, 2], np.ones(3))


class TestParallelContext:
    def test_map_sequential_matches_threads(self):
        f = lambda x: x + 1
        seq = ParallelContext(4, use_threads=False).map(f, range(20))
        thr = ParallelContext(4, use_threads=True).map(f, range(20))
        assert seq == thr == [x + 1 for x in range(20)]

    def test_map_records_phase(self):
        ctx = ParallelContext(4)
        ctx.map(lambda x: x, [1, 2, 3], costs=[5.0, 1.0, 1.0])
        assert ctx.cost.parallel_work == 7.0

    def test_degree_aware_beats_oblivious_in_model(self):
        work = np.zeros(64)
        work[0] = 1000  # one hub vertex
        work[1:] = 1.0
        aware = ParallelContext(8, degree_aware=True)
        aware.record_phase_from_work(work)
        obliv = ParallelContext(8, degree_aware=False)
        obliv.record_phase_from_work(work)
        # same total work, worse granularity for the oblivious schedule
        assert aware.cost.parallel_work == obliv.cost.parallel_work
        assert aware.modeled_time(8) <= obliv.modeled_time(8)

    def test_counted_lock_and_atomic(self):
        counters = SyncCounters()
        lock = CountedLock(counters)
        with lock:
            pass
        ctr = AtomicCounter(counters)
        assert ctr.fetch_add(2) == 0
        assert ctr.value == 2
        assert counters.lock_acquisitions == 1
        assert counters.cas_operations == 1

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ParallelContext(0)

    def test_machine_model_barrier_growth(self):
        m = MachineModel()
        assert m.barrier_cost(1) == 0.0
        assert m.barrier_cost(32) > m.barrier_cost(4)
        assert m.lock_cost(32) > m.lock_cost(1)
