"""Tests for modularity, dendrograms, and the five clustering algorithms."""

from __future__ import annotations

import numpy as np
import pytest

import networkx as nx

from repro.community import (
    modularity,
    ModularityTracker,
    labels_to_communities,
    Dendrogram,
    cnm,
    pma,
    pla,
    girvan_newman,
    pbd,
    BEST_KNOWN_MODULARITY,
    PAPER_TABLE2,
)
from repro.community.buckets import MultiLevelBucket
from repro.datasets import karate_club, KARATE_GROUND_TRUTH
from repro.errors import ClusteringError, GraphStructureError
from repro.generators import planted_partition
from repro.graph import from_edge_list, to_networkx

from tests.conftest import random_gnm


@pytest.fixture(scope="module")
def karate():
    return karate_club()


class TestModularity:
    def test_matches_networkx(self, karate):
        labels = KARATE_GROUND_TRUTH
        comms = [set(np.nonzero(labels == c)[0].tolist()) for c in (0, 1)]
        ref = nx.algorithms.community.modularity(to_networkx(karate), comms)
        assert modularity(karate, labels) == pytest.approx(ref)

    def test_singletons(self, karate):
        q = modularity(karate, np.arange(34))
        # all-singleton partition: q = -Σ (deg/2m)² < 0
        assert q < 0

    def test_one_cluster_zero(self, karate):
        assert modularity(karate, np.zeros(34)) == pytest.approx(0.0)

    def test_bounds(self):
        rng = np.random.default_rng(5)
        g = random_gnm(60, 150, seed=3)
        for _ in range(10):
            labels = rng.integers(0, 6, size=60)
            q = modularity(g, labels)
            assert -0.5 <= q < 1.0

    def test_arbitrary_label_values(self, karate):
        labels = KARATE_GROUND_TRUTH * 1000 + 7
        assert modularity(karate, labels) == pytest.approx(
            modularity(karate, KARATE_GROUND_TRUTH)
        )

    def test_length_mismatch(self, karate):
        with pytest.raises(ClusteringError):
            modularity(karate, np.zeros(3))

    def test_empty_graph(self):
        g = from_edge_list([], n_vertices=4)
        assert modularity(g, np.zeros(4)) == 0.0

    def test_labels_to_communities(self):
        labels = np.asarray([5, 2, 5, 2, 9])
        comms = labels_to_communities(labels)
        assert [c.tolist() for c in comms] == [[1, 3], [0, 2], [4]]


class TestModularityTracker:
    def test_initial_matches(self, karate):
        t = ModularityTracker(karate)
        assert t.modularity() == pytest.approx(0.0)
        t.check()

    def test_split_matches_recompute(self, karate):
        t = ModularityTracker(karate)
        part_b = np.nonzero(KARATE_GROUND_TRUTH == 1)[0]
        part_a = np.nonzero(KARATE_GROUND_TRUTH == 0)[0]
        t.split(part_a, part_b)
        t.check()
        assert t.modularity() == pytest.approx(
            modularity(karate, KARATE_GROUND_TRUTH)
        )
        assert t.n_clusters == 2

    def test_chained_splits(self):
        g = random_gnm(40, 80, seed=9)
        t = ModularityTracker(g)
        rng = np.random.default_rng(2)
        members = np.arange(40)
        for _ in range(5):
            lab = t.labels[int(rng.integers(0, 40))]
            cluster = np.nonzero(t.labels == lab)[0]
            if cluster.shape[0] < 2:
                continue
            cut = rng.integers(1, cluster.shape[0])
            t.split(cluster[:cut], cluster[cut:])
            t.check()

    def test_invalid_split_rejected(self, karate):
        t = ModularityTracker(karate)
        with pytest.raises(ClusteringError):
            t.split(np.asarray([0]), np.asarray([], dtype=np.int64))
        t.split(np.arange(17), np.arange(17, 34))
        with pytest.raises(ClusteringError):
            # 0 and 33 are now in different clusters
            t.split(np.asarray([0]), np.asarray([33]))


class TestDendrogram:
    def test_replay(self):
        d = Dendrogram(4, initial_score=-0.5)
        d.record(0, 1, 0.1)
        d.record(2, 3, 0.3)
        d.record(0, 2, 0.2)
        assert d.best_step() == 2
        labels = d.labels_at(2)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert d.labels_at(3).tolist() == [0, 0, 0, 0]

    def test_no_merge_better_than_initial(self):
        d = Dendrogram(3, initial_score=0.5)
        d.record(0, 1, 0.1)
        assert d.best_step() == 0
        assert d.labels_at(0).tolist() == [0, 1, 2]

    def test_step_bounds(self):
        d = Dendrogram(3)
        with pytest.raises(ClusteringError):
            d.labels_at(1)


class TestMultiLevelBucket:
    def test_insert_max(self):
        b = MultiLevelBucket()
        b.insert("a", 0.3)
        b.insert("b", 0.7)
        b.insert("c", -0.2)
        assert b.max() == ("b", 0.7)
        b.check_invariants()

    def test_update_moves_key(self):
        b = MultiLevelBucket()
        b.insert(1, 0.9)
        b.insert(2, 0.1)
        b.insert(1, -0.5)  # update
        assert b.max() == (2, 0.1)
        b.check_invariants()

    def test_remove(self):
        b = MultiLevelBucket()
        b.insert(1, 0.9)
        b.insert(2, 0.5)
        b.remove(1)
        assert b.max() == (2, 0.5)
        assert 1 not in b
        b.check_invariants()

    def test_empty_max_none(self):
        assert MultiLevelBucket().max() is None

    def test_tie_break_smallest_key(self):
        b = MultiLevelBucket()
        b.insert(7, 0.4)
        b.insert(3, 0.4)
        assert b.max() == (3, 0.4)

    def test_randomized_against_reference(self):
        rng = np.random.default_rng(11)
        b = MultiLevelBucket()
        ref: dict[int, float] = {}
        for _ in range(500):
            op = rng.integers(0, 3)
            k = int(rng.integers(0, 30))
            if op < 2:
                v = float(rng.uniform(-0.99, 0.99))
                b.insert(k, v)
                ref[k] = v
            elif k in ref:
                b.remove(k)
                del ref[k]
            if ref:
                mk, mv = b.max()
                assert mv == max(ref.values())
            else:
                assert b.max() is None
        b.check_invariants()

    def test_bad_params(self):
        with pytest.raises(ValueError):
            MultiLevelBucket(lo=1.0, hi=0.0)


class TestAgglomerative:
    def test_cnm_karate_score(self, karate):
        r = cnm(karate)
        # CNM's published karate score
        assert r.modularity == pytest.approx(0.3807, abs=1e-3)
        assert r.n_clusters == 3

    def test_pma_equals_cnm_merges(self, karate):
        a = cnm(karate).extras["dendrogram"]
        b = pma(karate).extras["dendrogram"]
        assert a.merges == b.merges
        assert np.allclose(a.scores, b.scores)

    def test_pma_equals_cnm_random_graphs(self):
        for seed in (1, 2, 3):
            g = random_gnm(50, 110, seed=seed)
            ra, rb = cnm(g), pma(g)
            assert ra.extras["dendrogram"].merges == rb.extras["dendrogram"].merges
            assert ra.modularity == pytest.approx(rb.modularity)

    def test_pma_matches_networkx_greedy_quality(self, karate):
        ref = nx.algorithms.community.greedy_modularity_communities(
            to_networkx(karate)
        )
        ref_q = nx.algorithms.community.modularity(to_networkx(karate), ref)
        assert pma(karate).modularity == pytest.approx(ref_q, abs=0.02)

    def test_pma_weighted(self):
        g = from_edge_list(
            [(0, 1, 5.0), (1, 2, 5.0), (0, 2, 5.0), (3, 4, 5.0), (4, 5, 5.0),
             (3, 5, 5.0), (2, 3, 0.1)]
        )
        r = pma(g)
        assert r.n_clusters == 2
        assert r.labels[0] == r.labels[1] == r.labels[2]
        assert r.labels[3] == r.labels[4] == r.labels[5]

    def test_pma_disconnected(self, disconnected_graph):
        r = pma(disconnected_graph)
        assert r.labels[0] == r.labels[1] == r.labels[2]
        assert r.labels[3] == r.labels[4]
        assert r.labels[0] != r.labels[3]

    def test_edgeless_graph(self):
        g = from_edge_list([], n_vertices=5)
        r = pma(g)
        assert r.n_clusters == 5
        assert r.modularity == 0.0

    def test_empty_graph_rejected(self):
        g = from_edge_list([], n_vertices=0)
        with pytest.raises(ClusteringError):
            pma(g)

    def test_directed_rejected(self):
        g = from_edge_list([(0, 1)], directed=True)
        with pytest.raises(GraphStructureError):
            pma(g)
        with pytest.raises(GraphStructureError):
            cnm(g)


class TestDivisive:
    def test_gn_karate_score(self, karate):
        r = girvan_newman(karate)
        # the paper's Table 2 GN value for karate is 0.401
        assert r.modularity == pytest.approx(0.401, abs=5e-3)

    def test_gn_recovers_planted_partition(self):
        pp = planted_partition([20] * 4, 0.5, 0.01, rng=np.random.default_rng(7))
        r = girvan_newman(pp.graph, patience=60)
        assert r.modularity >= 0.9 * modularity(pp.graph, pp.labels)

    def test_pbd_close_to_gn(self, karate):
        gq = girvan_newman(karate).modularity
        bq = pbd(karate, sample_fraction=0.3, rng=np.random.default_rng(1)).modularity
        assert bq >= gq - 0.05

    def test_pbd_full_sampling_without_prepass_equals_gn(self, karate):
        gn_r = girvan_newman(karate)
        pbd_r = pbd(
            karate,
            sample_fraction=1.0,
            exact_threshold=0,
            bridge_prepass=False,
        )
        assert pbd_r.modularity == pytest.approx(gn_r.modularity, abs=1e-9)

    def test_pbd_recovers_planted_partition(self):
        pp = planted_partition([20] * 4, 0.5, 0.01, rng=np.random.default_rng(9))
        r = pbd(pp.graph, sample_fraction=0.2, patience=60)
        assert r.modularity >= 0.85 * modularity(pp.graph, pp.labels)

    def test_patience_limits_iterations(self, karate):
        r = girvan_newman(karate, patience=5)
        full = girvan_newman(karate)
        assert r.extras["n_deletions"] <= full.extras["n_deletions"]

    def test_max_iterations(self, karate):
        r = girvan_newman(karate, max_iterations=3)
        assert r.extras["n_deletions"] <= 3

    def test_pbd_records_scoring_calls(self, karate):
        r = pbd(karate, exact_threshold=10)
        calls = r.extras["scoring_calls"]
        assert calls["approx"] + calls["exact"] > 0

    def test_pbd_granularity_switch_engages(self, karate):
        r = pbd(karate, exact_threshold=40)  # everything exact
        assert r.extras["scoring_calls"]["approx"] == 0

    def test_invalid_params(self, karate):
        with pytest.raises(ValueError):
            pbd(karate, sample_fraction=1.5)
        with pytest.raises(ValueError):
            pbd(karate, exact_threshold=-1)

    def test_divisive_on_disconnected(self, disconnected_graph):
        r = girvan_newman(disconnected_graph)
        assert r.n_clusters >= 3


class TestPLA:
    def test_karate_reasonable(self, karate):
        r = pla(karate)
        assert r.modularity > 0.3
        assert 2 <= r.n_clusters <= 8

    def test_recovers_planted_partition(self):
        pp = planted_partition([25] * 4, 0.5, 0.01, rng=np.random.default_rng(3))
        r = pla(pp.graph, rng=np.random.default_rng(4))
        assert r.modularity >= 0.9 * modularity(pp.graph, pp.labels)

    @pytest.mark.parametrize("metric", ["weight", "degree", "clustering"])
    def test_local_metrics_all_work(self, karate, metric):
        r = pla(karate, local_metric=metric)
        assert r.modularity > 0.2
        assert r.extras["local_metric"] == metric

    def test_bridge_handling(self, two_triangles_bridge):
        r = pla(two_triangles_bridge)
        # two triangles should stay separate or merge consistently
        assert r.labels[0] == r.labels[1] == r.labels[2]
        assert r.labels[3] == r.labels[4] == r.labels[5]

    def test_no_bridge_removal(self, karate):
        r = pla(karate, remove_bridges=False)
        assert r.modularity > 0.25

    def test_modularity_nonnegative_on_connected(self, karate):
        # pLA only accepts improving merges starting from singletons,
        # so final Q >= Q(singletons); on real networks it lands > 0.
        assert pla(karate).modularity >= 0.0

    def test_invalid_params(self, karate):
        with pytest.raises(ValueError):
            pla(karate, local_metric="psychic")
        with pytest.raises(ValueError):
            pla(karate, max_passes=0)

    def test_deterministic_with_seed(self, karate):
        a = pla(karate, rng=np.random.default_rng(42))
        b = pla(karate, rng=np.random.default_rng(42))
        assert np.array_equal(a.labels, b.labels)


class TestTable2Constants:
    def test_best_known_present_for_all(self):
        assert set(BEST_KNOWN_MODULARITY) == set(PAPER_TABLE2)

    def test_paper_rows_internally_consistent(self):
        for name, (n, gn_q, pbd_q, pma_q, pla_q, best) in PAPER_TABLE2.items():
            assert best >= max(gn_q, pbd_q, pma_q, pla_q) - 1e-9
            assert n > 0


class TestResultType:
    def test_summary_and_communities(self, karate):
        r = pma(karate)
        assert "pMA" in r.summary()
        comms = r.communities()
        assert sum(len(c) for c in comms) == 34
