"""Streaming ingestion: dynamic structures, events, crawlers, engine.

Property tests (hypothesis) pin the two incremental structures against
from-scratch recomputation on arbitrary churn sequences:

* :class:`IncrementalComponents` — labels after any add/delete/re-insert
  sequence equal a scratch union-find over the surviving edge set, and
  ``labels()`` is the canonical min-vertex-id form the batch
  ``connected_components`` kernel produces.
* :class:`StreamingStats` — triangle/wedge counters equal a full recount
  of the materialized snapshot after every operation sequence
  (``check()`` is the recount; ``burst_score`` stays in [0, 1]).

The engine tests cover the per-batch replay surface: crawl determinism
and coverage per policy, ``.events`` IO round-trips, prefix correctness,
and checkpoint/restore bit-identity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import karate_club
from repro.dynamic import (
    CRAWL_POLICIES,
    EdgeEvent,
    IncrementalComponents,
    StreamEngine,
    StreamingStats,
    canonical_final_edges,
    crawl_events,
    group_batches,
    read_events,
    stream_replay,
    write_events,
)
from repro.errors import GraphStructureError
from repro.kernels.connected import connected_components


# ---------------------------------------------------------------------------
# Strategies: operation sequences over a small fixed vertex universe
# ---------------------------------------------------------------------------
N = 12

ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "delete"]),
        st.integers(0, N - 1),
        st.integers(0, N - 1),
    ),
    min_size=0,
    max_size=80,
)


def _scratch_components(n, live_edges):
    """Reference: union-find from scratch over the surviving edge set."""
    parent = list(range(n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in live_edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    roots = [find(v) for v in range(n)]
    # canonical: min vertex id per component — roots are already minimal
    # under the min-root union above.
    return np.asarray(roots, dtype=np.int64)


def _apply_ops(n, sequence):
    """Run one op sequence through IncrementalComponents + a live-set."""
    cc = IncrementalComponents(n)
    live = set()
    for kind, u, v in sequence:
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if kind == "add":
            changed = cc.add_edge(u, v)
            assert changed == (key not in live)
            live.add(key)
        else:
            changed = cc.delete_edge(u, v)
            assert changed == (key in live)
            live.discard(key)
    return cc, live


class TestIncrementalComponentsProperties:
    @given(ops)
    @settings(max_examples=120, deadline=None)
    def test_churn_equals_scratch_union_find(self, sequence):
        cc, live = _apply_ops(N, sequence)
        ref = _scratch_components(N, sorted(live))
        got = cc.labels()
        assert np.array_equal(got, ref)
        assert cc.n_components == len(np.unique(ref))
        assert cc.n_edges == len(live)

    @given(ops)
    @settings(max_examples=60, deadline=None)
    def test_labels_canonical_and_stable(self, sequence):
        # labels() is min-vertex-id per component, so two calls with no
        # mutation in between are bit-identical, and each label is the
        # smallest member of its component.
        cc, _ = _apply_ops(N, sequence)
        a = cc.labels()
        b = cc.labels()
        assert np.array_equal(a, b)
        for lbl in np.unique(a):
            members = np.nonzero(a == lbl)[0]
            assert lbl == members.min()

    @given(ops)
    @settings(max_examples=60, deadline=None)
    def test_connectivity_queries_match_labels(self, sequence):
        cc, _ = _apply_ops(N, sequence)
        lab = cc.labels()
        for u, v in [(0, 1), (2, 9), (N - 1, N - 2)]:
            assert cc.connected(u, v) == (lab[u] == lab[v])
        for v in (0, N // 2):
            assert cc.component_size(v) == int((lab == lab[v]).sum())


def _scratch_stats(n, live_edges):
    """Reference triangle/wedge counts over the surviving edge set."""
    adj = [set() for _ in range(n)]
    for u, v in live_edges:
        adj[u].add(v)
        adj[v].add(u)
    tri = sum(
        len(adj[u] & adj[v]) for u, v in live_edges
    ) // 3 if live_edges else 0
    deg = [len(a) for a in adj]
    wedges = sum(d * (d - 1) // 2 for d in deg)
    return tri, wedges, deg


class TestStreamingStatsProperties:
    @given(ops)
    @settings(max_examples=100, deadline=None)
    def test_counters_equal_recount(self, sequence):
        stats = StreamingStats(N, window=16)
        live = set()
        for kind, u, v in sequence:
            if u == v:
                continue
            key = (u, v) if u < v else (v, u)
            if kind == "add":
                stats.add_edge(u, v)
                live.add(key)
            else:
                stats.delete_edge(u, v)
                live.discard(key)
        tri, wedges, deg = _scratch_stats(N, sorted(live))
        assert stats.n_edges == len(live)
        assert stats.n_wedges == wedges
        for v in range(N):
            assert stats.degree(v) == deg[v]
        stats.check()  # internal recount assertion
        if wedges:
            assert stats.global_clustering == pytest.approx(
                3.0 * tri / wedges
            )
        else:
            assert stats.global_clustering == 0.0

    @given(ops)
    @settings(max_examples=60, deadline=None)
    def test_burst_score_bounded(self, sequence):
        stats = StreamingStats(N, window=8)
        for kind, u, v in sequence:
            if u == v:
                continue
            (stats.add_edge if kind == "add" else stats.delete_edge)(u, v)
        total = 0.0
        for v in range(N):
            s = stats.burst_score(v)
            assert 0.0 <= s <= 1.0
            total += s
        if len(stats.recent_activity()) == 0:
            assert total == 0.0


# ---------------------------------------------------------------------------
# Events: grouping, canonical replay, file IO
# ---------------------------------------------------------------------------
class TestEvents:
    def test_group_batches_splits_on_timestamp(self):
        evs = [
            EdgeEvent("add", 0, 1, t=0),
            EdgeEvent("add", 1, 2, t=0),
            EdgeEvent("delete", 0, 1, t=3),
        ]
        batches = list(group_batches(evs))
        assert [len(b) for b in batches] == [2, 1]
        assert batches[1][0].kind == "delete"

    def test_group_batches_rejects_regression(self):
        evs = [EdgeEvent("add", 0, 1, t=5), EdgeEvent("add", 1, 2, t=4)]
        with pytest.raises(GraphStructureError):
            list(group_batches(evs))

    def test_canonical_final_edges_semantics(self):
        evs = [
            EdgeEvent("add", 1, 0, t=0, weight=2.0),
            EdgeEvent("add", 0, 1, t=0, weight=9.0),  # dup: first weight wins
            EdgeEvent("add", 3, 3, t=0),  # self-loop ignored
            EdgeEvent("delete", 0, 1, t=1),
            EdgeEvent("add", 0, 1, t=2, weight=4.0),  # re-insert, new weight
            EdgeEvent("delete", 5, 6, t=2),  # deleting absent: no-op
        ]
        assert canonical_final_edges(evs) == [(0, 1, 4.0)]

    def test_events_file_roundtrip(self, tmp_path):
        evs = [
            EdgeEvent("add", 0, 1, t=0),
            EdgeEvent("add", 2, 3, t=0, weight=2.5),
            EdgeEvent("delete", 0, 1, t=1),
        ]
        path = tmp_path / "stream.events"
        write_events(path, evs, n_vertices=7)
        n, back = read_events(path)
        assert n == 7
        assert back == evs

    def test_bad_event_kind_rejected(self):
        with pytest.raises(GraphStructureError):
            EdgeEvent("toggle", 0, 1)


# ---------------------------------------------------------------------------
# Crawler sources
# ---------------------------------------------------------------------------
class TestCrawlers:
    @pytest.mark.parametrize("policy", CRAWL_POLICIES)
    def test_full_crawl_reveals_every_edge(self, policy):
        g = karate_club()
        evs = crawl_events(
            g, policy=policy, batch_size=4,
            rng=np.random.default_rng(7),
        )
        final = canonical_final_edges(evs)
        src = np.repeat(np.arange(g.n_vertices), np.diff(g.offsets))
        keep = src < g.targets
        expect = sorted(
            (int(a), int(b), 1.0)
            for a, b in zip(src[keep], g.targets[keep])
        )
        assert final == expect

    @pytest.mark.parametrize("policy", CRAWL_POLICIES)
    def test_crawl_deterministic_under_seed(self, policy):
        g = karate_club()
        a = crawl_events(
            g, policy=policy, batch_size=4,
            rng=np.random.default_rng(3),
        )
        b = crawl_events(
            g, policy=policy, batch_size=4,
            rng=np.random.default_rng(3),
        )
        assert a == b

    def test_max_batches_truncates(self):
        g = karate_club()
        evs = crawl_events(
            g, policy="bfs", batch_size=2, max_batches=3,
            rng=np.random.default_rng(0),
        )
        assert evs
        assert max(e.t for e in evs) <= 2
        assert len(canonical_final_edges(evs)) < g.n_edges


# ---------------------------------------------------------------------------
# StreamEngine
# ---------------------------------------------------------------------------
class TestStreamEngine:
    def test_prefix_correctness_smoke(self):
        g = karate_club()
        evs = crawl_events(
            g, policy="bfs", batch_size=8, rng=np.random.default_rng(0)
        )
        eng = StreamEngine(
            g.n_vertices, analytics=("components", "stats", "degree")
        )
        for batch in group_batches(evs):
            res = eng.apply_batch(batch)
            snap = eng.snapshot()
            ref = connected_components(snap)
            assert np.array_equal(res.labels, ref)
            assert res.n_components == len(np.unique(ref))
        # after the full crawl the engine holds the hidden graph
        assert eng.n_edges == g.n_edges

    def test_empty_batch_rejected(self):
        eng = StreamEngine(4)
        with pytest.raises(GraphStructureError):
            eng.apply_batch([])

    def test_checkpoint_restore_bit_identical(self):
        g = karate_club()
        evs = crawl_events(
            g, policy="mod", batch_size=6, rng=np.random.default_rng(1)
        )
        batches = list(group_batches(evs))
        cut = len(batches) // 2

        full = StreamEngine(
            g.n_vertices, analytics=("components", "stats", "degree"), k=5
        )
        for b in batches:
            full.apply_batch(b)

        part = StreamEngine(
            g.n_vertices, analytics=("components", "stats", "degree"), k=5
        )
        for b in batches[:cut]:
            part.apply_batch(b)
        resumed = StreamEngine.restore(part.checkpoint())
        for b in batches[cut:]:
            resumed.apply_batch(b)

        a = [r.checksum for r in full.results]
        b = [r.checksum for r in resumed.results]
        assert a == b
        assert np.array_equal(
            full.results[-1].labels, resumed.results[-1].labels
        )

    def test_stream_replay_registered_algorithm(self):
        g = karate_club()
        res = stream_replay(g, policy="bfs", batch_size=8)
        assert res.n_edges == g.n_edges
        ref = connected_components(g)
        assert np.array_equal(res.labels, ref)
        assert res.batch_checksums.shape[0] == res.n_batches
