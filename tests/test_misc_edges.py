"""Edge-case coverage across modules: error paths, rarely-hit branches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphStructureError
from repro.graph import DynamicGraph, Treap, from_edge_list
from repro.graph.csr import Graph
from repro.kernels import bfs, delta_stepping
from repro.parallel import ParallelContext
from repro.partitioning import fiedler_vector, spectral_bisection


class TestTreapEdges:
    def test_empty_min_max(self):
        t = Treap()
        with pytest.raises(KeyError):
            t.min_key()
        with pytest.raises(KeyError):
            t.max_key()

    def test_join_overlapping_ranges_rejected(self):
        a, b = Treap(), Treap()
        a.insert(5)
        b.insert(3)
        with pytest.raises(ValueError):
            a.join(b)

    def test_insert_overwrites_value(self):
        t = Treap()
        t.insert(7, 1.0)
        assert not t.insert(7, 2.5)  # overwrite, not new
        assert t.search(7) == 2.5
        assert len(t) == 1

    def test_join_with_empty(self):
        a, b = Treap(), Treap()
        a.insert(1)
        j = a.join(b)
        assert list(j) == [1]


class TestDynamicGraphEdges:
    def test_from_csr_roundtrip(self, weighted_graph):
        dyn = DynamicGraph.from_csr(weighted_graph)
        assert dyn.n_edges == weighted_graph.n_edges
        back = dyn.to_csr()
        assert back.n_edges == weighted_graph.n_edges
        assert back.edge_weight(1, 3) == 0.5

    def test_from_csr_directed_rejected(self):
        g = from_edge_list([(0, 1)], directed=True)
        with pytest.raises(GraphStructureError):
            DynamicGraph.from_csr(g)

    def test_self_loop_rejected(self):
        dyn = DynamicGraph(3)
        with pytest.raises(GraphStructureError):
            dyn.add_edge(1, 1)

    def test_unsorted_mode_deletion(self):
        dyn = DynamicGraph(5, sorted_adjacency=False)
        for v in (1, 2, 3, 4):
            dyn.add_edge(0, v)
        assert dyn.delete_edge(0, 2)
        assert sorted(dyn.neighbors(0).tolist()) == [1, 3, 4]


class TestGraphValidation:
    def test_bad_offsets_rejected(self):
        with pytest.raises(GraphStructureError):
            Graph(np.asarray([1, 2]), np.asarray([0]), directed=False)
        with pytest.raises(GraphStructureError):
            Graph(np.asarray([0, 2]), np.asarray([0]), directed=False)
        with pytest.raises(GraphStructureError):
            Graph(np.asarray([0, 1]), np.asarray([5]), directed=False)

    def test_decreasing_offsets_rejected(self):
        with pytest.raises(GraphStructureError):
            Graph(
                np.asarray([0, 2, 1]),
                np.asarray([0, 1]),
                directed=False,
            )


class TestKernelEdges:
    def test_bfs_on_isolated_source(self):
        g = from_edge_list([(1, 2)], n_vertices=4)
        res = bfs(g, 0)
        assert res.n_reached == 1

    def test_delta_stepping_isolated(self):
        g = from_edge_list([(1, 2, 1.0)], n_vertices=4)
        d = delta_stepping(g, 0).distances
        assert d[0] == 0.0 and np.isinf(d[1])

    def test_bfs_max_depth_zero(self, triangle_plus_tail):
        res = bfs(triangle_plus_tail, 0, max_depth=0)
        assert res.n_reached == 1


class TestSpectralEdges:
    def test_fiedler_separates_components(self):
        """On a disconnected graph λ₂ = 0 and the eigenvector is a
        component indicator — the spectral split recovers the parts."""
        edges = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        edges += [(i, j) for i in range(6, 12) for j in range(i + 1, 12)]
        g = from_edge_list(edges)
        side = spectral_bisection(g, method="lanczos", refine=False)
        assert len(set(side[:6].tolist())) == 1
        assert len(set(side[6:].tolist())) == 1
        assert side[0] != side[6]


class TestContextEdges:
    def test_chunks_for_degree_aware(self):
        ctx = ParallelContext(4, degree_aware=True)
        work = np.asarray([100.0, 1, 1, 1, 1, 1, 1, 1])
        chunks = ctx.chunks_for(8, work)
        assert chunks[0] == (0, 1)  # the heavy item gets its own chunk

    def test_chunks_for_oblivious(self):
        ctx = ParallelContext(4, degree_aware=False)
        chunks = ctx.chunks_for(8, np.ones(8))
        assert chunks == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_region_records_spawn(self):
        ctx = ParallelContext(8)
        with ctx.region():
            ctx.phase(100, 1)
        assert ctx.cost.regions == 1
        assert ctx.modeled_time(8) > ctx.cost.parallel_work / 8
