"""Graph-service daemon tests: registry, coalescer, protocol, HTTP, facade.

Covers the service invariants end to end:

* residency — load-once semantics, LRU eviction under byte pressure,
  atomic failed loads, prompt shared-segment release on eviction;
* coalescing — concurrent threaded clients' merged batches are
  bit-identical to isolated per-request runs, identical requests
  deduplicate into one execution;
* deadlines — an expired request gets a structured
  ``DeadlineExpired`` while its batch peers succeed;
* the HTTP server with concurrent stdlib clients, async tickets and
  structured wire errors;
* the ``repro.api`` facade sharing one validation path with the wire.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

import repro
import repro.api as api
from repro import generators
from repro.errors import (
    AdmissionDenied,
    DeadlineExpired,
    GraphNotResident,
    ProtocolError,
)
from repro.graph import io as graph_io
from repro.obs.api import algorithm_spec, split_operands, validate_params
from repro.parallel.shm import live_segment_names
from repro.serve import Coalescer, GraphRegistry, graph_nbytes
from repro.serve.client import ServeClient
from repro.serve.server import ReproServer, ServeConfig


@pytest.fixture(scope="module")
def small_world():
    return generators.watts_strogatz(
        120, 6, 0.1, rng=np.random.default_rng(7)
    )


@pytest.fixture(scope="module")
def rmat():
    return generators.rmat(8, 8, rng=np.random.default_rng(0)).as_undirected()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_load_once(self, tmp_path, small_world):
        p = tmp_path / "g.txt"
        graph_io.write_edge_list(small_world, str(p))
        reg = GraphRegistry()
        a = reg.load(str(p), name="g")
        b = reg.load(str(p), name="g")
        assert a is b
        assert reg.loads == 1 and reg.load_hits == 1

    def test_lru_eviction_under_byte_pressure(self, small_world):
        nbytes = graph_nbytes(small_world)
        reg = GraphRegistry(max_bytes=2 * nbytes + 16)
        reg.add("a", small_world)
        reg.add("b", small_world)
        reg.get("a")  # touch: b becomes LRU
        reg.add("c", small_world)
        assert reg.names() == ["a", "c"]
        assert reg.evictions == 1

    def test_admission_denied_oversized(self, small_world):
        reg = GraphRegistry(max_bytes=graph_nbytes(small_world) // 2)
        with pytest.raises(AdmissionDenied):
            reg.add("a", small_world)
        assert reg.names() == []

    def test_pinned_graphs_never_evicted(self, small_world):
        nbytes = graph_nbytes(small_world)
        reg = GraphRegistry(max_bytes=nbytes + 16)
        reg.add("a", small_world)
        reg.pin("a")
        with pytest.raises(AdmissionDenied):
            reg.add("b", small_world)
        assert reg.names() == ["a"]
        reg.unpin("a")
        reg.add("b", small_world)
        assert reg.names() == ["b"]

    def test_failed_load_leaves_no_name(self, tmp_path):
        reg = GraphRegistry()
        with pytest.raises(Exception):
            reg.load(str(tmp_path / "missing.txt"), name="ghost")
        with pytest.raises(GraphNotResident):
            reg.get("ghost")
        assert reg.names() == []

    def test_eviction_releases_segment_promptly(self, small_world):
        reg = GraphRegistry(share=True)
        before = set(live_segment_names())
        reg.add("a", small_world)
        created = set(live_segment_names()) - before
        assert len(created) == 1
        reg.evict("a")
        assert not created & set(live_segment_names())

    def test_close_releases_all_segments(self, small_world):
        before = set(live_segment_names())
        with GraphRegistry(share=True) as reg:
            reg.add("a", small_world)
            reg.add("b", small_world)
            assert len(set(live_segment_names()) - before) == 2
        assert set(live_segment_names()) == before


# ----------------------------------------------------------------------
# Coalescer
# ----------------------------------------------------------------------
class TestCoalescer:
    def test_concurrent_bfs_merge_bit_identical(self, rmat):
        reg = GraphRegistry()
        reg.add("g", rmat)
        with Coalescer(reg, max_batch_delay=0.02) as co:
            sources = list(range(12))
            results = [None] * len(sources)

            def client(i):
                results[i] = co.submit(
                    "g", "bfs", {"source": sources[i]}
                ).result()

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(sources))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for i, s in enumerate(sources):
                iso = repro.bfs(rmat, s).distances
                assert np.array_equal(results[i].value, iso)
            # all twelve shared one graph residency and dispatched batched
            assert reg.loads == 1
            stats = co.stats()
            assert stats["batches"] < stats["requests"]
            assert stats["coalescing_hit_rate"] > 0

    def test_msbfs_merge_matches_isolated(self, rmat):
        reg = GraphRegistry()
        reg.add("g", rmat)
        with Coalescer(reg, max_batch_delay=0.02) as co:
            futs = [
                co.submit("g", "msbfs", {"sources": [0, 5, 9]}),
                co.submit("g", "msbfs", {"sources": [2, 5]}),
                co.submit("g", "bfs", {"source": 7}),
            ]
            got = [f.result() for f in futs]
        iso = repro.msbfs(rmat, [0, 5, 9])
        assert np.array_equal(got[0].value.distances, iso.distances)
        assert got[0].value.n_levels == iso.n_levels
        iso2 = repro.msbfs(rmat, [2, 5])
        assert np.array_equal(got[1].value.distances, iso2.distances)
        assert got[1].value.n_levels == iso2.n_levels
        assert np.array_equal(got[2].value, repro.bfs(rmat, 7).distances)

    def test_closeness_merge_matches_isolated(self, rmat):
        reg = GraphRegistry()
        reg.add("g", rmat)
        with Coalescer(reg, max_batch_delay=0.02) as co:
            futs = [
                co.submit("g", "closeness", {"sources": [1, 2, 3]}),
                co.submit("g", "closeness", {"sources": [3, 4]}),
            ]
            got = [f.result() for f in futs]
        iso = repro.closeness_centrality(rmat, sources=[1, 2, 3])
        assert np.array_equal(got[0].value, iso)
        iso2 = repro.closeness_centrality(rmat, sources=[3, 4])
        assert np.array_equal(got[1].value, iso2)

    def test_identical_requests_deduplicate(self, rmat):
        reg = GraphRegistry()
        reg.add("g", rmat)
        with Coalescer(reg, max_batch_delay=0.05) as co:
            futs = [
                co.submit("g", "connected_components", {}) for _ in range(6)
            ]
            vals = [f.result().value for f in futs]
        assert all(np.array_equal(v, vals[0]) for v in vals)
        stats = co.stats()
        assert stats["dedup_hits"] == 5
        assert stats["batches"] == 1

    def test_deadline_expired_peers_succeed(self, rmat):
        reg = GraphRegistry()
        reg.add("g", rmat)
        with Coalescer(reg, max_batch_delay=0.05) as co:
            doomed = co.submit("g", "bfs", {"source": 0}, deadline_s=1e-9)
            time.sleep(0.002)  # let the doomed deadline lapse
            healthy = co.submit("g", "bfs", {"source": 1})
            with pytest.raises(DeadlineExpired):
                doomed.result(timeout=10)
            res = healthy.result(timeout=10)
            assert np.array_equal(res.value, repro.bfs(rmat, 1).distances)
            assert co.stats()["expired"] == 1

    def test_invalid_params_fail_fast(self, rmat):
        reg = GraphRegistry()
        reg.add("g", rmat)
        with Coalescer(reg) as co:
            with pytest.raises(TypeError):
                co.submit("g", "bfs", {"source": 0, "bogus": 1})
            with pytest.raises(ProtocolError):
                co.submit("g", "bfs", {})  # missing the source operand

    def test_max_batch_is_a_hard_cap(self, rmat):
        # A burst piling more than max_batch requests onto one key
        # between dispatcher wake-ups must still be split: max_batch=1
        # means one kernel dispatch per request, never accidental
        # merging (regression — the cap used to be only a flush
        # trigger, so the whole accumulated key ran as one batch).
        reg = GraphRegistry()
        reg.add("g", rmat)
        with Coalescer(reg, max_batch=1, max_batch_delay=0.05) as co:
            futs = [
                co.submit("g", "bfs", {"source": s}) for s in range(10)
            ]
            got = [f.result(timeout=30) for f in futs]
        for s, res in enumerate(got):
            assert np.array_equal(res.value, repro.bfs(rmat, s).distances)
            assert res.extras["serve"]["batch_size"] == 1
            assert not res.extras["serve"]["coalesced"]
        stats = co.stats()
        assert stats["batches"] == stats["requests"] == 10
        assert stats["merged_requests"] == 0
        assert stats["coalescing_hit_rate"] == 0.0

    def test_missing_graph_is_structured(self, rmat):
        reg = GraphRegistry()
        with Coalescer(reg, max_batch_delay=0.001) as co:
            fut = co.submit("nope", "bfs", {"source": 0})
            with pytest.raises(GraphNotResident):
                fut.result(timeout=10)


# ----------------------------------------------------------------------
# HTTP server + client
# ----------------------------------------------------------------------
@pytest.fixture()
def server(tmp_path, rmat):
    path = tmp_path / "g.txt"
    graph_io.write_edge_list(rmat, str(path))
    with ReproServer(ServeConfig(port=0, max_batch_delay=0.01)) as srv:
        srv.start_background()
        host, port = srv.address
        client = ServeClient(host, port)
        client.load(str(path), name="g")
        yield srv, client, rmat


class TestHTTP:
    def test_concurrent_clients_bit_identical(self, server):
        srv, client, g = server
        host, port = srv.address
        out = [None] * 6

        def go(i):
            out[i] = ServeClient(host, port).submit("g", "bfs", source=i)

        threads = [threading.Thread(target=go, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(6):
            iso = repro.bfs(g, i).distances
            assert np.array_equal(
                np.asarray(out[i]["value"], dtype=iso.dtype), iso
            )
        assert any(doc["serve"]["coalesced"] for doc in out)

    def test_ticket_roundtrip(self, server):
        _, client, g = server
        ticket = client.submit("g", "closeness", wait=False)["ticket"]
        doc = client.wait(ticket, timeout=60)
        iso = repro.closeness_centrality(g)
        assert np.allclose(np.asarray(doc["value"]), iso)

    def test_structured_errors_over_wire(self, server):
        _, client, _ = server
        with pytest.raises(GraphNotResident):
            client.submit("missing", "bfs", source=0)
        with pytest.raises(ProtocolError):
            client.submit("g", "bfs", bogus=True)
        with pytest.raises(ProtocolError):
            client.submit("g", "no_such_algorithm")

    def test_schema_published_from_registry(self, server):
        _, client, _ = server
        doc = client.algorithms()
        assert doc["version"] == 1
        assert set(doc["algorithms"]) == set(repro.algorithm_names())
        bfs_spec = doc["algorithms"]["bfs"]
        assert bfs_spec["coalesce"] == "merge-sources"
        assert [o["name"] for o in bfs_spec["operands"]] == ["source"]
        assert doc["algorithms"]["pla"]["coalesce"] == "dedup-identical"

    def test_stats_and_residency(self, server):
        _, client, _ = server
        client.submit("g", "bfs", source=0)
        stats = client.stats()
        assert stats["coalescer"]["requests"] >= 1
        assert stats["registry"]["loads"] == 1
        assert [e["name"] for e in client.graphs()["resident"]] == ["g"]

    def test_evict_over_wire(self, server):
        _, client, _ = server
        assert client.evict("g") is True
        assert client.evict("g") is False
        with pytest.raises(GraphNotResident):
            client.submit("g", "bfs", source=0)


# ----------------------------------------------------------------------
# repro.api facade
# ----------------------------------------------------------------------
class TestFacade:
    def test_raw_graph_run_matches_engine(self, rmat):
        res = api.run("closeness", rmat)
        assert np.array_equal(res.value, repro.closeness_centrality(rmat))

    def test_session_load_submit_run(self, tmp_path, rmat):
        p = tmp_path / "g.txt"
        graph_io.write_edge_list(rmat, str(p))
        with api.Session(max_batch_delay=0.005) as s:
            h = s.load(str(p), name="g")
            assert h.describe()["n_vertices"] == rmat.n_vertices
            fut = s.submit(h, "bfs", source=0)
            res = s.run("bfs", h, source=1)
            assert np.array_equal(
                fut.result().value, repro.bfs(rmat, 0).distances
            )
            assert np.array_equal(res.value, repro.bfs(rmat, 1).distances)

    def test_positional_operands_fold_by_name(self, rmat):
        a = api.run("bfs", rmat, 0)
        b = api.run("bfs", rmat, source=0)
        assert np.array_equal(a.value.distances, b.value.distances)

    def test_one_validation_path(self, rmat):
        with pytest.raises(TypeError, match="bogus"):
            api.run("bfs", rmat, source=0, bogus=1)
        with api.Session() as s:
            h = s.add("g", rmat)
            with pytest.raises(TypeError, match="bogus"):
                s.submit(h, "bfs", source=0, bogus=1)

    def test_legacy_repro_run_warns_but_works(self, rmat):
        with pytest.warns(DeprecationWarning):
            res = repro.run("connected_components", rmat, trace=False)
        assert res.value.shape == (rmat.n_vertices,)


# ----------------------------------------------------------------------
# Registry-generated specs
# ----------------------------------------------------------------------
class TestSpecs:
    def test_every_algorithm_has_a_spec(self):
        for name in repro.algorithm_names():
            spec = algorithm_spec(name)
            assert spec["name"] == name
            assert isinstance(spec["operands"], list)
            assert isinstance(spec["params"], dict)

    def test_split_operands(self):
        ops, kw = split_operands("bfs", {"source": 3, "max_depth": 2})
        assert ops == (3,)
        assert kw == {"max_depth": 2}
        with pytest.raises(TypeError):
            split_operands("bfs", {"max_depth": 2})

    def test_validate_rejects_unknown(self):
        with pytest.raises(TypeError, match="accepted"):
            validate_params("closeness", {"nope": 1})
        validate_params("closeness", {"sources": [1], "wf_improved": False})


# ----------------------------------------------------------------------
# Streaming ingestion (/v1/ingest + Session.ingest)
# ----------------------------------------------------------------------
class TestIngest:
    def test_http_ingest_updates_resident_graph(self, server):
        srv, client, g = server
        before = client.submit("g", "connected_components")["value"]
        doc = client.ingest(
            "g",
            [[1, "add", 0, g.n_vertices - 1], [1, "+", 1, g.n_vertices - 2]],
            analytics=["components", "stats", "degree"],
        )
        assert doc["graph"] == "g"
        assert doc["n_batches_applied"] == 1
        batch = doc["batches"][0]
        assert batch["n_applied"] >= 1
        assert isinstance(batch["checksum"], int)
        # subsequent queries run on the swapped-in snapshot
        after = client.submit("g", "connected_components")["value"]
        assert len(after) == len(before)
        resident = client.graphs()["resident"][0]
        assert resident["source"] == "ingest"
        assert resident["n_edges"] == batch["n_edges"]

    def test_http_ingest_is_incremental_across_calls(self, server):
        _, client, g = server
        a = client.ingest("g", [[1, "add", 0, 2]])
        b = client.ingest("g", [[2, "delete", 0, 2]])
        assert b["n_batches_total"] == a["n_batches_total"] + 1

    def test_http_ingest_structured_errors(self, server):
        _, client, g = server
        with pytest.raises(GraphNotResident):
            client.ingest("missing", [[1, "add", 0, 1]])
        with pytest.raises(ProtocolError):
            client.ingest("g", [[1, "add", 0, g.n_vertices]])  # out of range
        with pytest.raises(ProtocolError):
            client.ingest("g", [[1, "toggle", 0, 1]])
        with pytest.raises(ProtocolError):
            client.ingest("g", [])

    def test_session_ingest_matches_engine(self, rmat):
        from repro.dynamic import EdgeEvent, StreamEngine, group_batches

        events = [
            EdgeEvent("add", 0, 9, t=1),
            EdgeEvent("add", 3, 7, t=1),
            EdgeEvent("delete", 0, 9, t=2),
        ]
        ref = StreamEngine.from_graph(
            rmat, analytics=("components", "stats", "degree"), k=10
        )
        ref_results = [
            ref.apply_batch(b) for b in group_batches(events)
        ]
        with api.Session() as s:
            s.add("g", rmat)
            doc = s.ingest("g", events)
            got = s.registry.get("g").graph
        assert [b["checksum"] for b in doc["batches"]] == [
            r.checksum for r in ref_results
        ]
        assert got.n_edges == ref.n_edges
