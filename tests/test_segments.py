"""Segment primitives, graph contraction and the §1.2c fast paths.

Covers the edge-centric primitive library (`repro.kernels.segments`),
the `contract` coarsening kernel's exact-modularity contract, the
vectorized triangle-counting path against its per-edge reference, and
the multilevel pLA mode's determinism/monotonicity guarantees.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.community import modularity, pla
from repro.community.result import ClusteringResult
from repro.datasets.karate import karate_club
from repro.graph import contract, from_edge_array
from repro.kernels.segments import (
    boundary_vertices,
    compact_adjacency,
    group_offsets,
    grouped_label_weights,
    intersect_sorted_segments,
    segment_argmax,
    segment_maxes,
    segment_sums,
)
from repro.metrics.clustering import (
    _triangle_counts_arcloop,
    local_clustering_coefficients,
    triangle_counts,
)


# ---------------------------------------------------------------------------
# Segmented reductions
# ---------------------------------------------------------------------------
def test_segment_sums_with_empty_segments():
    values = np.asarray([1.0, 2.0, 3.0, 4.0])
    # segments: [], [1,2], [], [3], [4], []
    offsets = np.asarray([0, 0, 2, 2, 3, 4, 4])
    np.testing.assert_allclose(
        segment_sums(values, offsets), [0.0, 3.0, 0.0, 3.0, 4.0, 0.0]
    )


def test_segment_sums_all_empty():
    out = segment_sums(np.empty(0), np.zeros(4, dtype=np.int64))
    np.testing.assert_allclose(out, np.zeros(3))


def test_segment_maxes_and_argmax():
    values = np.asarray([5.0, 1.0, 7.0, 7.0, 2.0])
    offsets = np.asarray([0, 2, 2, 5])
    np.testing.assert_allclose(
        segment_maxes(values, offsets), [5.0, -np.inf, 7.0]
    )
    # argmax returns global indices, first occurrence on ties, -1 empty
    np.testing.assert_array_equal(
        segment_argmax(values, offsets), [0, -1, 2]
    )


@given(
    st.lists(st.floats(-100, 100), min_size=0, max_size=40),
    st.lists(st.integers(0, 8), min_size=1, max_size=10),
)
@settings(max_examples=60, deadline=None)
def test_segment_reductions_match_python(values, seg_lengths):
    values = np.asarray(values, dtype=np.float64)
    total = int(values.shape[0])
    # clip the segment plan to exactly cover `values`
    lengths = []
    left = total
    for s in seg_lengths:
        lengths.append(min(s, left))
        left -= lengths[-1]
    lengths.append(left)
    offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    sums = segment_sums(values, offsets)
    arg = segment_argmax(values, offsets)
    for i in range(len(lengths)):
        seg = values[offsets[i]:offsets[i + 1]]
        assert sums[i] == pytest.approx(seg.sum() if seg.size else 0.0)
        if seg.size:
            assert arg[i] == offsets[i] + int(np.argmax(seg))
        else:
            assert arg[i] == -1


def test_group_offsets_multi_key():
    a = np.asarray([0, 0, 0, 1, 1, 2])
    b = np.asarray([3, 3, 4, 4, 4, 4])
    np.testing.assert_array_equal(group_offsets(a, b), [0, 2, 3, 5, 6])


def test_grouped_label_weights_matches_dict():
    rng = np.random.default_rng(3)
    src = rng.integers(0, 6, 50)
    lab = rng.integers(0, 4, 50)
    w = rng.random(50)
    gsrc, glab, gsum = grouped_label_weights(src, lab, w)
    expect: dict[tuple[int, int], float] = {}
    for s, l, x in zip(src.tolist(), lab.tolist(), w.tolist()):
        expect[(s, l)] = expect.get((s, l), 0.0) + x
    got = dict(zip(zip(gsrc.tolist(), glab.tolist()), gsum.tolist()))
    assert sorted(got) == sorted(expect)
    for k in expect:
        assert got[k] == pytest.approx(expect[k])
    # sorted by (src, label)
    assert np.array_equal(np.lexsort((glab, gsrc)), np.arange(gsrc.shape[0]))


def test_boundary_vertices_mask():
    g = from_edge_array(
        4,
        np.asarray([0, 1, 2]),
        np.asarray([1, 2, 3]),
        directed=False,
    )
    labels = np.asarray([0, 0, 1, 1])
    mask = boundary_vertices(
        g.arc_sources(), g.targets, labels, g.n_vertices
    )
    np.testing.assert_array_equal(mask, [False, True, True, False])


# ---------------------------------------------------------------------------
# Batched sorted intersection
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_intersect_sorted_segments_matches_intersect1d(seed):
    rng = np.random.default_rng(seed)
    n, m = 30, 120
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    g = from_edge_array(n, src[keep], dst[keep], directed=False)
    u, v = g.edge_endpoints()
    counts, common, pair_ids = intersect_sorted_segments(
        g.offsets, g.targets, u, v
    )
    for i in range(u.shape[0]):
        ref = np.intersect1d(
            g.neighbors(int(u[i])), g.neighbors(int(v[i])),
            assume_unique=True,
        )
        assert counts[i] == ref.shape[0]
        np.testing.assert_array_equal(np.sort(common[pair_ids == i]), ref)


def test_intersect_empty_inputs():
    counts, common, pair_ids = intersect_sorted_segments(
        np.asarray([0, 0, 0]), np.empty(0, dtype=np.int64),
        np.asarray([0]), np.asarray([1]),
    )
    assert counts.tolist() == [0]
    assert common.shape[0] == 0 and pair_ids.shape[0] == 0


def test_compact_adjacency_preserves_order():
    g = from_edge_array(
        4,
        np.asarray([0, 0, 1, 2]),
        np.asarray([1, 2, 2, 3]),
        directed=False,
    )
    keep = np.ones(g.n_arcs, dtype=bool)
    offs, tgts, w = compact_adjacency(g.offsets, g.targets, keep, 4)
    np.testing.assert_array_equal(offs, g.offsets)
    np.testing.assert_array_equal(tgts, g.targets)
    # drop every arc of vertex 0
    keep2 = g.arc_sources() != 0
    offs2, tgts2, _ = compact_adjacency(g.offsets, g.targets, keep2, 4)
    assert offs2[1] - offs2[0] == 0
    np.testing.assert_array_equal(tgts2, g.targets[keep2])


# ---------------------------------------------------------------------------
# contract(): exact modularity preservation
# ---------------------------------------------------------------------------
edge_lists = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)),
    min_size=1,
    max_size=50,
)
label_arrays = st.lists(st.integers(0, 4), min_size=12, max_size=12)


@given(edge_lists, label_arrays)
@settings(max_examples=80, deadline=None)
def test_contract_preserves_modularity_exactly(edges, labels):
    src = np.asarray([e[0] for e in edges], dtype=np.int64)
    dst = np.asarray([e[1] for e in edges], dtype=np.int64)
    g = from_edge_array(12, src, dst, directed=False)
    labels = np.asarray(labels, dtype=np.int64)
    q_fine = modularity(g, labels)
    coarse, vmap = contract(g, labels)
    q_coarse = modularity(coarse, np.arange(coarse.n_vertices))
    # self-loops carry intra-cluster weight, so the invariance is exact
    assert q_coarse == pytest.approx(q_fine, abs=1e-12)


@given(edge_lists, label_arrays)
@settings(max_examples=60, deadline=None)
def test_contract_vertex_map_equivalence(edges, labels):
    src = np.asarray([e[0] for e in edges], dtype=np.int64)
    dst = np.asarray([e[1] for e in edges], dtype=np.int64)
    g = from_edge_array(12, src, dst, directed=False)
    labels = np.asarray(labels, dtype=np.int64)
    coarse, vmap = contract(g, labels)
    # dense contiguous coarse ids
    assert vmap.shape == (12,)
    assert coarse.n_vertices == int(np.unique(labels).shape[0])
    assert sorted(np.unique(vmap).tolist()) == list(range(coarse.n_vertices))
    # vmap groups exactly the fine label partition
    assert np.array_equal(
        vmap, np.unique(labels, return_inverse=True)[1]
    )
    # strengths aggregate: coarse strength = summed fine strengths
    fine_strength = np.zeros(12)
    u, v = g.edge_endpoints()
    w = g.edge_weights()
    np.add.at(fine_strength, u, w)
    np.add.at(fine_strength, v, w)
    coarse_strength = np.zeros(coarse.n_vertices)
    cu, cv = coarse.edge_endpoints()
    cw = coarse.edge_weights()
    np.add.at(coarse_strength, cu, cw)
    np.add.at(coarse_strength, cv, cw)
    np.testing.assert_allclose(
        coarse_strength,
        np.bincount(vmap, weights=fine_strength, minlength=coarse.n_vertices),
    )


def test_contract_round_trips_on_fuzz_corpus():
    from repro.qa.differential import build_representation, corpus

    rng = np.random.default_rng(0)
    for item in corpus(0, 20):
        if item.directed or item.n == 0:
            continue
        g = build_representation(item, "csr", 0)
        labels = rng.integers(0, max(1, item.n // 2), g.n_vertices)
        coarse, vmap = contract(g, labels)
        assert coarse.n_vertices == int(np.unique(labels).shape[0])
        # same-label vertices map together, different labels apart
        assert np.array_equal(
            vmap, np.unique(labels, return_inverse=True)[1]
        )
        assert float(coarse.edge_weights().sum()) == pytest.approx(
            float(g.edge_weights().sum())
        )
        q1 = modularity(g, labels)
        q2 = modularity(coarse, np.arange(coarse.n_vertices))
        assert q2 == pytest.approx(q1, abs=1e-12)


# ---------------------------------------------------------------------------
# Vectorized triangle counting vs the per-edge reference
# ---------------------------------------------------------------------------
@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_triangle_counts_match_arcloop(edges):
    src = np.asarray([e[0] for e in edges], dtype=np.int64)
    dst = np.asarray([e[1] for e in edges], dtype=np.int64)
    g = from_edge_array(12, src, dst, directed=False)
    np.testing.assert_array_equal(
        triangle_counts(g), _triangle_counts_arcloop(g)
    )


def test_triangle_counts_match_arcloop_on_view():
    g = karate_club()
    view = g.view()
    rng = np.random.default_rng(5)
    for e in rng.choice(g.n_edges, g.n_edges // 3, replace=False):
        view.deactivate(int(e))
    np.testing.assert_array_equal(
        triangle_counts(view), _triangle_counts_arcloop(view)
    )
    # the lcc wrapper goes through the vectorized path too
    lcc = local_clustering_coefficients(view)
    assert lcc.shape == (g.n_vertices,)


# ---------------------------------------------------------------------------
# Multilevel pLA
# ---------------------------------------------------------------------------
def test_multilevel_pla_karate():
    g = karate_club()
    res = pla(g, multilevel=True)
    assert isinstance(res, ClusteringResult)
    assert res.extras["multilevel"] is True
    assert res.extras["n_levels"] >= 1
    # reported modularity is the fine-graph modularity of the labels
    assert res.modularity == pytest.approx(modularity(g, res.labels))
    # multilevel should find the well-known good range on karate
    assert res.modularity > 0.38


def test_multilevel_pla_deterministic():
    g = karate_club()
    a = pla(g, multilevel=True)
    b = pla(g, multilevel=True)
    np.testing.assert_array_equal(a.labels, b.labels)
    assert a.modularity == b.modularity


def test_multilevel_pla_at_least_single_level_on_karate():
    g = karate_club()
    q_single = pla(g).modularity
    q_multi = pla(g, multilevel=True).modularity
    assert q_multi + 1e-9 >= q_single


def test_multilevel_pla_spans():
    from repro.obs.tracer import Tracer
    from repro.parallel.runtime import ParallelContext

    g = karate_club()
    tr = Tracer()
    ctx = ParallelContext(1, backend="serial", trace=tr)
    pla(g, multilevel=True, ctx=ctx)
    ctx.close()
    assert tr.root.find("coarsen")
    assert tr.root.find("sweep")
    assert tr.root.find("contract-level")


def test_multilevel_pla_isolated_vertices():
    g = from_edge_array(
        5, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
        directed=False,
    )
    res = pla(g, multilevel=True)
    assert res.modularity == 0.0
    assert res.labels.shape == (5,)


# ---------------------------------------------------------------------------
# Lazy local-metric table
# ---------------------------------------------------------------------------
def test_pla_weight_metric_never_computes_clustering(monkeypatch):
    import importlib

    pla_mod = importlib.import_module("repro.community.pla")
    calls = {"n": 0}
    real = pla_mod.local_clustering_coefficients

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(
        pla_mod, "local_clustering_coefficients", counting
    )
    g = karate_club()
    pla(g, local_metric="weight")
    pla(g, local_metric="degree")
    pla(g, multilevel=True)
    assert calls["n"] == 0
    pla(g, local_metric="clustering")
    assert calls["n"] == 1
