"""Tests for MST/MSF, SSSP, spanning forest and biconnected kernels."""

from __future__ import annotations

import numpy as np
import pytest

import networkx as nx

from repro.errors import GraphStructureError
from repro.graph import from_edge_list, to_networkx
from repro.kernels import (
    biconnected_components,
    articulation_points,
    bridges,
    boruvka_msf,
    kruskal_msf,
    prim_mst,
    minimum_spanning_forest,
    delta_stepping,
    dijkstra,
    spanning_forest,
)
from repro.kernels.mst import forest_weight
from repro.kernels.spanning import tree_edges

from tests.conftest import random_gnm


def random_weighted(n, m, seed):
    g = random_gnm(n, m, seed)
    rng = np.random.default_rng(seed + 1)
    u, v = g.edge_endpoints()
    w = rng.uniform(0.1, 10.0, size=g.n_edges)
    from repro.graph import from_edge_array

    return from_edge_array(n, u, v, weights=w, directed=False, dedupe=False)


class TestMST:
    def test_boruvka_matches_kruskal_weight(self):
        g = random_weighted(60, 150, seed=3)
        wb = forest_weight(g, boruvka_msf(g))
        wk = forest_weight(g, kruskal_msf(g))
        assert wb == pytest.approx(wk)

    def test_matches_networkx(self):
        g = random_weighted(50, 120, seed=9)
        gx = to_networkx(g)
        ref = sum(
            d["weight"] for _, _, d in nx.minimum_spanning_edges(gx, data=True)
        )
        assert forest_weight(g, boruvka_msf(g)) == pytest.approx(ref)

    def test_forest_on_disconnected(self):
        g = from_edge_list([(0, 1, 2.0), (1, 2, 3.0), (3, 4, 1.0)], n_vertices=6)
        ids = boruvka_msf(g)
        assert ids.shape[0] == 3  # n - #components = 6 - 3

    def test_prim_single_component(self):
        from repro.kernels import connected_components

        # search a few seeds for a connected instance (deterministic)
        for seed in range(21, 40):
            g = random_weighted(40, 100, seed=seed)
            if len(set(connected_components(g).tolist())) == 1:
                break
        else:  # pragma: no cover - m=100 ≫ n ln n, practically connected
            pytest.fail("no connected instance found")
        wp = forest_weight(g, prim_mst(g, 0))
        wk = forest_weight(g, kruskal_msf(g))
        assert wp == pytest.approx(wk)

    def test_unweighted_graph_msf_size(self, two_triangles_bridge):
        ids = boruvka_msf(two_triangles_bridge)
        assert ids.shape[0] == 5  # spanning tree of 6 vertices

    def test_tie_breaking_deterministic(self):
        g = from_edge_list([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
        a = boruvka_msf(g)
        b = boruvka_msf(g)
        assert np.array_equal(a, b)
        assert a.shape[0] == 2

    def test_directed_rejected(self):
        g = from_edge_list([(0, 1)], directed=True)
        with pytest.raises(GraphStructureError):
            boruvka_msf(g)

    def test_tie_heavy_multi_component_same_edge_set(self):
        # Audit regression: both methods break weight ties by edge id
        # (lexicographic (w, id) rank), so on tie-heavy multi-component
        # graphs they must pick the *same edges*, not merely the same
        # total weight.
        from repro.qa.oracles import RefGraph, msf_weight

        rng = np.random.default_rng(17)
        for trial in range(5):
            n = 14
            m = 24
            u = rng.integers(0, n // 2, size=m)          # component A
            v = rng.integers(0, n // 2, size=m)
            u2 = rng.integers(n // 2, n, size=m)         # component B
            v2 = rng.integers(n // 2, n, size=m)
            src = np.concatenate([u, u2])
            dst = np.concatenate([v, v2])
            keep = src != dst
            w = rng.choice([1.0, 1.0, 2.0, 3.0], size=keep.sum())
            from repro.graph import from_edge_array

            g = from_edge_array(n, src[keep], dst[keep], weights=w,
                                directed=False)
            ids_b = np.sort(boruvka_msf(g))
            ids_k = np.sort(kruskal_msf(g))
            assert np.array_equal(ids_b, ids_k), f"trial {trial}"
            eu, ev = g.edge_endpoints()
            ref = RefGraph(n, list(zip(eu.tolist(), ev.tolist(),
                                       g.edge_weights().tolist())))
            assert forest_weight(g, ids_b) == pytest.approx(msf_weight(ref))

    def test_dispatch(self):
        g = random_weighted(20, 40, seed=2)
        assert np.array_equal(
            minimum_spanning_forest(g, method="boruvka"),
            minimum_spanning_forest(g, method="kruskal"),
        )
        with pytest.raises(ValueError):
            minimum_spanning_forest(g, method="nope")


class TestSSSP:
    def test_delta_matches_dijkstra(self):
        g = random_weighted(80, 240, seed=5)
        a = delta_stepping(g, 0).distances
        b = dijkstra(g, 0).distances
        assert np.allclose(a, b, equal_nan=True)

    def test_matches_networkx(self):
        g = random_weighted(60, 180, seed=7)
        gx = to_networkx(g)
        ref = nx.single_source_dijkstra_path_length(gx, 0)
        mine = delta_stepping(g, 0).distances
        for v in range(60):
            if v in ref:
                assert mine[v] == pytest.approx(ref[v])
            else:
                assert np.isinf(mine[v])

    def test_unit_weights_match_bfs(self):
        from repro.kernels import bfs_distances

        g = random_gnm(70, 200, seed=31)
        d1 = delta_stepping(g, 2).distances
        d0 = bfs_distances(g, 2).astype(float)
        d0[d0 < 0] = np.inf
        assert np.allclose(d1, d0)

    def test_parents_valid(self):
        g = random_weighted(50, 150, seed=13)
        res = delta_stepping(g, 1)
        for v in range(50):
            if np.isfinite(res.distances[v]) and v != 1:
                p = int(res.parents[v])
                assert res.distances[v] == pytest.approx(
                    res.distances[p] + g.edge_weight(p, v)
                )

    def test_negative_weight_rejected(self):
        g = from_edge_list([(0, 1, -1.0)])
        with pytest.raises(GraphStructureError):
            delta_stepping(g, 0)
        with pytest.raises(GraphStructureError):
            dijkstra(g, 0)

    def test_directed_sssp(self):
        g = from_edge_list([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)], directed=True)
        d = delta_stepping(g, 0).distances
        assert d.tolist() == [0.0, 1.0, 2.0]

    def test_explicit_delta(self):
        g = random_weighted(40, 120, seed=17)
        a = delta_stepping(g, 0, delta=0.5).distances
        b = delta_stepping(g, 0, delta=50.0).distances  # ~Bellman-Ford
        c = dijkstra(g, 0).distances
        assert np.allclose(a, c)
        assert np.allclose(b, c)

    def test_bad_delta(self):
        g = from_edge_list([(0, 1, 1.0)])
        with pytest.raises(ValueError):
            delta_stepping(g, 0, delta=0.0)


class TestSpanningForest:
    def test_covers_all_vertices(self, disconnected_graph):
        parent = spanning_forest(disconnected_graph)
        assert (parent >= 0).all()
        assert parent[0] == 0 and parent[3] == 3 and parent[5] == 5

    def test_edge_count(self, two_triangles_bridge):
        parent = spanning_forest(two_triangles_bridge)
        assert tree_edges(parent).shape[0] == 5

    def test_tree_edges_exist(self, two_triangles_bridge):
        parent = spanning_forest(two_triangles_bridge)
        for child, par in tree_edges(parent):
            assert two_triangles_bridge.has_edge(int(child), int(par))


class TestBiconnected:
    def test_bridge_detection(self, two_triangles_bridge):
        g = two_triangles_bridge
        res = biconnected_components(g)
        u, v = g.edge_endpoints()
        bridge_sets = [
            {int(u[e]), int(v[e])} for e in res.bridges
        ]
        assert bridge_sets == [{2, 3}]

    def test_articulation_points(self, two_triangles_bridge):
        arts = articulation_points(two_triangles_bridge)
        assert arts.tolist() == [2, 3]

    def test_component_count(self, two_triangles_bridge):
        res = biconnected_components(two_triangles_bridge)
        assert res.n_components == 3  # two triangles + the bridge

    def test_against_networkx_random(self):
        g = random_gnm(80, 100, seed=41)
        gx = to_networkx(g)
        mine_art = set(articulation_points(g).tolist())
        ref_art = set(nx.articulation_points(gx))
        assert mine_art == ref_art
        u, v = g.edge_endpoints()
        mine_br = {frozenset((int(u[e]), int(v[e]))) for e in bridges(g)}
        ref_br = {frozenset(e) for e in nx.bridges(gx)}
        assert mine_br == ref_br
        assert biconnected_components(g).n_components == len(
            list(nx.biconnected_components(gx))
        )

    def test_cycle_has_no_articulation(self):
        g = from_edge_list([(i, (i + 1) % 8) for i in range(8)])
        res = biconnected_components(g)
        assert res.articulation_points.shape[0] == 0
        assert res.bridge_mask.sum() == 0
        assert res.n_components == 1

    def test_path_all_bridges(self):
        g = from_edge_list([(i, i + 1) for i in range(5)])
        res = biconnected_components(g)
        assert res.bridge_mask.all()
        assert set(res.articulation_points.tolist()) == {1, 2, 3, 4}

    def test_edge_mask(self, two_triangles_bridge):
        g = two_triangles_bridge
        view = g.view()
        u, v = g.edge_endpoints()
        # deactivate one triangle edge (0,1): 0-2-1 path keeps it biconnected? no
        eid = next(i for i in range(g.n_edges) if {int(u[i]), int(v[i])} == {0, 1})
        view.deactivate(eid)
        res = biconnected_components(view)
        # the two remaining edges of that triangle are now bridges
        assert res.bridge_mask.sum() == 3
        assert res.edge_component[eid] == -1

    def test_directed_rejected(self):
        g = from_edge_list([(0, 1)], directed=True)
        with pytest.raises(GraphStructureError):
            biconnected_components(g)

    def test_empty_graph(self):
        g = from_edge_list([], n_vertices=3)
        res = biconnected_components(g)
        assert res.n_components == 0
        assert not res.articulation_mask.any()
