"""Tests for the paper's future-work extensions: spectral modularity
maximization and dynamic-network analysis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.community import modularity, pma, spectral_modularity
from repro.datasets import karate_club
from repro.dynamic import IncrementalComponents, StreamingStats
from repro.errors import ClusteringError, GraphStructureError
from repro.generators import planted_partition
from repro.graph import from_edge_list
from repro.kernels import connected_components
from repro.metrics import global_clustering_coefficient, triangle_counts

from tests.conftest import random_gnm


class TestSpectralModularity:
    def test_karate_newman_score(self):
        """Newman (2006) reports Q = 0.419 for the karate club."""
        r = spectral_modularity(karate_club())
        assert r.modularity == pytest.approx(0.419, abs=0.005)
        assert r.n_clusters == 4

    def test_recovers_planted_partition(self):
        pp = planted_partition([40] * 5, 0.35, 0.01, rng=np.random.default_rng(0))
        r = spectral_modularity(pp.graph)
        truth = modularity(pp.graph, pp.labels)
        assert r.modularity >= 0.98 * truth

    def test_beats_or_matches_pma_on_karate(self):
        g = karate_club()
        assert spectral_modularity(g).modularity >= pma(g).modularity

    def test_two_cliques(self):
        edges = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        edges += [(i, j) for i in range(6, 12) for j in range(i + 1, 12)]
        edges += [(0, 6)]
        g = from_edge_list(edges)
        r = spectral_modularity(g)
        assert r.n_clusters == 2
        assert len(set(r.labels[:6].tolist())) == 1
        assert len(set(r.labels[6:].tolist())) == 1

    def test_indivisible_clique(self):
        g = from_edge_list([(i, j) for i in range(8) for j in range(i + 1, 8)])
        r = spectral_modularity(g)
        assert r.n_clusters == 1
        assert r.modularity == pytest.approx(0.0)

    def test_no_fine_tune_still_positive(self):
        r = spectral_modularity(karate_club(), fine_tune=False)
        assert r.modularity > 0.3

    def test_random_graph_bounded(self):
        g = random_gnm(80, 200, seed=1)
        r = spectral_modularity(g)
        assert -0.5 <= r.modularity < 1.0

    def test_edgeless(self):
        g = from_edge_list([], n_vertices=5)
        r = spectral_modularity(g)
        assert r.modularity == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ClusteringError):
            spectral_modularity(from_edge_list([], n_vertices=0))

    def test_directed_rejected(self):
        with pytest.raises(GraphStructureError):
            spectral_modularity(from_edge_list([(0, 1)], directed=True))


class TestIncrementalComponents:
    def test_insert_merges(self):
        ic = IncrementalComponents(5)
        assert ic.n_components == 5
        ic.add_edge(0, 1)
        ic.add_edge(1, 2)
        assert ic.n_components == 3
        assert ic.connected(0, 2)
        assert not ic.connected(0, 3)
        assert ic.component_size(2) == 3

    def test_duplicate_insert(self):
        ic = IncrementalComponents(3)
        assert ic.add_edge(0, 1)
        assert not ic.add_edge(1, 0)
        assert ic.n_edges == 1

    def test_delete_rebuilds(self):
        ic = IncrementalComponents(4)
        ic.add_edge(0, 1)
        ic.add_edge(1, 2)
        ic.add_edge(2, 3)
        assert ic.n_components == 1
        assert ic.delete_edge(1, 2)
        assert not ic.connected(0, 3)
        assert ic.n_components == 2

    def test_delete_redundant_edge_keeps_connectivity(self):
        ic = IncrementalComponents(3)
        for e in [(0, 1), (1, 2), (0, 2)]:
            ic.add_edge(*e)
        ic.delete_edge(0, 1)
        assert ic.connected(0, 1)  # still via 2

    def test_delete_missing(self):
        ic = IncrementalComponents(3)
        assert not ic.delete_edge(0, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphStructureError):
            IncrementalComponents(3).add_edge(1, 1)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "del"]),
                st.integers(0, 9),
                st.integers(0, 9),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_static_recompute(self, ops):
        ic = IncrementalComponents(10)
        edges: set[tuple[int, int]] = set()
        for kind, u, v in ops:
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if kind == "add":
                ic.add_edge(u, v)
                edges.add(key)
            else:
                ic.delete_edge(u, v)
                edges.discard(key)
        g = from_edge_list(sorted(edges), n_vertices=10)
        ref = connected_components(g)
        mine = ic.labels()
        for a in range(10):
            for b in range(a + 1, 10):
                assert (mine[a] == mine[b]) == (ref[a] == ref[b])


class TestStreamingStats:
    def test_triangle_counting(self):
        ss = StreamingStats(5)
        ss.add_edge(0, 1)
        ss.add_edge(1, 2)
        assert ss.n_triangles == 0
        ss.add_edge(0, 2)
        assert ss.n_triangles == 1
        ss.add_edge(2, 3)
        ss.add_edge(3, 0)
        assert ss.n_triangles == 2  # 0-1-2 and 0-2-3
        ss.delete_edge(0, 2)
        assert ss.n_triangles == 0  # edge 0-2 was in both
        ss.check()

    def test_matches_static_metrics(self):
        rng = np.random.default_rng(3)
        ss = StreamingStats(40)
        for _ in range(300):
            u, v = rng.integers(0, 40, size=2)
            if u != v:
                if rng.random() < 0.85:
                    ss.add_edge(int(u), int(v))
                else:
                    ss.delete_edge(int(u), int(v))
        ss.check()
        g = ss._snapshot()
        assert ss.global_clustering == pytest.approx(
            global_clustering_coefficient(g)
        )
        assert ss.n_triangles == int(triangle_counts(g).sum()) // 3

    def test_average_degree(self):
        ss = StreamingStats(4)
        ss.add_edge(0, 1)
        ss.add_edge(2, 3)
        assert ss.average_degree == pytest.approx(1.0)

    def test_burst_score(self):
        ss = StreamingStats(10, window=8)
        for v in range(1, 7):
            ss.add_edge(0, v)  # vertex 0 in every event
        assert ss.burst_score(0) == 1.0
        assert ss.burst_score(9) == 0.0
        assert 0.0 < ss.burst_score(3) < 0.5

    def test_window_bounds_memory(self):
        ss = StreamingStats(50, window=4)
        for v in range(1, 20):
            ss.add_edge(0, v)
        assert len(ss.recent_activity()) == 4

    def test_duplicate_and_missing(self):
        ss = StreamingStats(3)
        assert ss.add_edge(0, 1)
        assert not ss.add_edge(0, 1)
        assert not ss.delete_edge(1, 2)

    def test_bad_window(self):
        with pytest.raises(GraphStructureError):
            StreamingStats(3, window=0)
