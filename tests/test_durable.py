"""Durability layer: atomic writes, envelopes, journals, crash resume.

The contract under test (DESIGN §13): every durable artifact is written
atomically (readers never observe a torn file), every checkpoint
envelope detects truncation/bit-flips/wrong-kind loudly as
:class:`~repro.errors.CorruptCheckpoint`, and each of the three
recovery surfaces — sharded BSP coordinator, stream engine, daemon
registry — resumes from its last durable state with **bit-identical**
results.

Tier-1 smokes simulate the crash in-process (an exception thrown
between supersteps / a checkpoint file left mid-stream); the
``crash_full`` matrix SIGKILLs real coordinator subprocesses.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.centrality.closeness import closeness_centrality
from repro.cli import main as cli_main
from repro.community.pla import pla
from repro.datasets.karate import karate_club
from repro.durable import (
    ENVELOPE_MAGIC,
    Journal,
    check_envelope,
    load_state,
    pack_envelope,
    replay_journal,
    save_state,
    unpack_envelope,
    verify_envelope,
    write_json_atomic,
)
from repro.dynamic import StreamEngine, crawl_events, group_batches, write_events
from repro.errors import CorruptCheckpoint, ServiceRecovering
from repro.graph import io as graph_io
from repro.kernels.bfs import msbfs
from repro.kernels.connected import connected_components
from repro.parallel.chaos import files_appeared, run_coordinator_killed
from repro.sharded import (
    BSPCheckpointer,
    BSPDriver,
    build_shard_set,
    sharded_closeness,
    sharded_connected_components,
    sharded_msbfs,
    sharded_pla,
)

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def karate():
    return karate_club()


# ---------------------------------------------------------------------------
# Atomic writes + the CRC-stamped envelope
# ---------------------------------------------------------------------------
class TestAtomicWrites:
    def test_write_json_atomic_roundtrip(self, tmp_path):
        path = tmp_path / "doc.json"
        doc = {"b": [1, 2, 3], "a": {"nested": True}}
        write_json_atomic(path, doc, sort_keys=True)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == doc
        # the temp file must not survive the replace
        assert list(tmp_path.glob(".doc.json.*")) == []

    def test_replace_overwrites_previous(self, tmp_path):
        path = tmp_path / "doc.json"
        write_json_atomic(path, {"v": 1})
        write_json_atomic(path, {"v": 2})
        assert json.loads(path.read_text()) == {"v": 2}

    def test_envelope_roundtrip(self):
        payload = b"\x00\x01payload bytes\xff"
        blob = pack_envelope("unit-test", payload)
        assert blob.startswith(ENVELOPE_MAGIC)
        kind, got = unpack_envelope(blob, kind="unit-test")
        assert kind == "unit-test"
        assert got == payload

    def test_save_load_state_numpy_bit_identical(self, tmp_path):
        path = tmp_path / "s.ckpt"
        arr = np.arange(257, dtype=np.int32).reshape(1, -1)
        save_state(path, {"arr": arr, "n": 7}, kind="unit-test")
        st = load_state(path, kind="unit-test")
        assert st["n"] == 7
        assert st["arr"].tobytes() == arr.tobytes()
        assert st["arr"].dtype == arr.dtype
        assert verify_envelope(path) == "unit-test"
        assert check_envelope(path) == []

    def test_kind_mismatch_refused(self, tmp_path):
        path = tmp_path / "s.ckpt"
        save_state(path, {"x": 1}, kind="alpha")
        with pytest.raises(CorruptCheckpoint, match="kind mismatch"):
            load_state(path, kind="beta")

    @pytest.mark.parametrize("cut", [0, 4, 11, 30, -1])
    def test_truncation_detected(self, tmp_path, cut):
        path = tmp_path / "s.ckpt"
        save_state(path, {"x": list(range(100))}, kind="t")
        blob = path.read_bytes()
        path.write_bytes(blob[:cut])
        with pytest.raises(CorruptCheckpoint, match="truncated|CRC"):
            load_state(path, kind="t")
        assert check_envelope(path) != []

    @pytest.mark.parametrize("where", ["magic", "header", "payload"])
    def test_bit_flip_detected(self, tmp_path, where):
        path = tmp_path / "s.ckpt"
        save_state(path, {"x": list(range(100))}, kind="t")
        blob = bytearray(path.read_bytes())
        offset = {"magic": 2, "header": 20, "payload": len(blob) - 5}[where]
        blob[offset] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CorruptCheckpoint):
            load_state(path, kind="t")
        problems = check_envelope(path)
        assert problems and str(path) in problems[0]

    def test_trailing_garbage_detected(self, tmp_path):
        path = tmp_path / "s.ckpt"
        save_state(path, {"x": 1}, kind="t")
        path.write_bytes(path.read_bytes() + b"junk")
        with pytest.raises(CorruptCheckpoint, match="trailing garbage"):
            verify_envelope(path)

    def test_non_envelope_file_refused(self, tmp_path):
        path = tmp_path / "s.ckpt"
        path.write_bytes(b"this is not an envelope at all, not even close")
        with pytest.raises(CorruptCheckpoint, match="bad magic"):
            verify_envelope(path)

    def test_check_envelope_missing_file(self, tmp_path):
        assert check_envelope(tmp_path / "absent.ckpt") != []


# ---------------------------------------------------------------------------
# The append-only journal
# ---------------------------------------------------------------------------
class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ops.journal"
        records = [{"op": "load", "i": i} for i in range(5)]
        with Journal(path) as j:
            for r in records:
                j.append(r)
        assert replay_journal(path) == records

    def test_append_survives_reopen(self, tmp_path):
        path = tmp_path / "ops.journal"
        with Journal(path) as j:
            j.append({"op": "a"})
        with Journal(path) as j:
            j.append({"op": "b"})
        assert [r["op"] for r in replay_journal(path)] == ["a", "b"]

    def test_torn_final_line_dropped(self, tmp_path):
        path = tmp_path / "ops.journal"
        with Journal(path) as j:
            j.append({"op": "a"})
            j.append({"op": "bbbbbbbbbbbbbbbb"})
        blob = path.read_bytes()
        path.write_bytes(blob[:-7])  # crash mid-append: torn tail
        assert [r["op"] for r in replay_journal(path)] == ["a"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "ops.journal"
        with Journal(path) as j:
            j.append({"op": "aaaa"})
            j.append({"op": "b"})
        lines = path.read_text().splitlines(keepends=True)
        lines[0] = lines[0].replace("aaaa", "aaaX")
        path.write_text("".join(lines))
        with pytest.raises(CorruptCheckpoint, match="line 1"):
            replay_journal(path)

    def test_final_line_bit_flip_is_not_torn(self, tmp_path):
        # A newline-terminated final line whose body still parses as
        # JSON but fails its CRC is real corruption, not a torn append.
        path = tmp_path / "ops.journal"
        with Journal(path) as j:
            j.append({"op": "aaaa"})
        path.write_text(path.read_text().replace("aaaa", "aaaX"))
        with pytest.raises(CorruptCheckpoint):
            replay_journal(path)

    def test_missing_file_is_empty(self, tmp_path):
        assert replay_journal(tmp_path / "absent.journal") == []


# ---------------------------------------------------------------------------
# Tier-1 guard: no raw JSON writes outside the durability layer
# ---------------------------------------------------------------------------
def test_no_raw_json_writes_in_src():
    """Every JSON artifact written from ``src/`` must go through
    ``repro.durable.write_json_atomic`` (crash atomicity)."""
    offenders = []
    for path in sorted((REPO / "src").rglob("*.py")):
        rel = path.relative_to(REPO)
        if "repro/durable" in str(rel).replace(os.sep, "/"):
            continue  # the one sanctioned implementation site
        text = path.read_text()
        for needle in ("json.dump(", "write_text(json.dumps"):
            if needle in text:
                offenders.append(f"{rel}: {needle}")
    assert not offenders, (
        "raw JSON file writes found — use repro.durable.write_json_atomic "
        f"instead: {offenders}"
    )


# ---------------------------------------------------------------------------
# BSP coordinator resume (tier-1, in-process simulated crash)
# ---------------------------------------------------------------------------
class _Boom(RuntimeError):
    """Stand-in for coordinator death between supersteps."""


def _resume_driver(ss, cpdir) -> BSPDriver:
    return BSPDriver(
        ss, checkpointer=BSPCheckpointer(cpdir, every=1, resume=True)
    )


def _crashing_driver(ss, cpdir, *, crash_after: int) -> BSPDriver:
    """A resume-armed driver whose superstep raises after N calls."""
    drv = _resume_driver(ss, cpdir)
    orig = drv.superstep
    calls = {"n": 0}

    def wrapped(*a, **kw):
        if calls["n"] >= crash_after:
            raise _Boom(f"simulated coordinator death at call {calls['n']}")
        calls["n"] += 1
        return orig(*a, **kw)

    drv.superstep = wrapped  # instance attr shadows the method
    return drv


class TestBSPResume:
    @pytest.fixture()
    def shards(self, karate, tmp_path):
        return build_shard_set(karate, tmp_path / "ss", k=3), tmp_path / "cp"

    def test_msbfs_resume_bit_identical(self, karate, shards):
        ss, cpdir = shards
        sources = [0, 16, 33]
        with pytest.raises(_Boom):
            sharded_msbfs(ss, sources,
                          driver=_crashing_driver(ss, cpdir, crash_after=2))
        assert list(cpdir.glob("*.ckpt")), "crash left no durable checkpoint"
        got = sharded_msbfs(ss, sources, driver=_resume_driver(ss, cpdir))
        ref = msbfs(karate, sources)
        assert got.distances.tobytes() == ref.distances.tobytes()
        assert got.n_levels == ref.n_levels
        assert not list(cpdir.glob("*.ckpt")), "completion must clear ckpts"

    def test_components_resume_bit_identical(self, karate, shards):
        ss, cpdir = shards
        with pytest.raises(_Boom):
            sharded_connected_components(
                ss, driver=_crashing_driver(ss, cpdir, crash_after=1))
        got = sharded_connected_components(
            ss, driver=_resume_driver(ss, cpdir))
        assert np.array_equal(got, connected_components(karate))

    def test_pla_resume_bit_identical(self, karate, shards):
        ss, cpdir = shards
        with pytest.raises(_Boom):
            sharded_pla(ss, driver=_crashing_driver(ss, cpdir, crash_after=4))
        got = sharded_pla(ss, driver=_resume_driver(ss, cpdir))
        ref = pla(karate, multilevel=True)
        assert got.modularity == ref.modularity
        assert np.array_equal(got.labels, ref.labels)
        assert got.extras == ref.extras

    def test_closeness_resume_bit_identical(self, karate, shards):
        ss, cpdir = shards
        with pytest.raises(_Boom):
            sharded_closeness(
                ss, driver=_crashing_driver(ss, cpdir, crash_after=5))
        got = sharded_closeness(ss, driver=_resume_driver(ss, cpdir))
        assert got.tobytes() == closeness_centrality(karate).tobytes()
        assert not list(cpdir.glob("*.ckpt"))

    def test_resumed_metrics_cover_precrash_supersteps(self, karate, shards):
        ss, cpdir = shards
        drv1 = _crashing_driver(ss, cpdir, crash_after=3)
        with pytest.raises(_Boom):
            sharded_msbfs(ss, [0, 16, 33], driver=drv1)
        drv2 = _resume_driver(ss, cpdir)
        sharded_msbfs(ss, [0, 16, 33], driver=drv2)
        # cumulative ledger: resumed run's superstep count equals an
        # uninterrupted run's (indices contiguous from 0)
        drv_ref = BSPDriver(ss)
        sharded_msbfs(ss, [0, 16, 33], driver=drv_ref)
        assert [s.index for s in drv2.stats] == [
            s.index for s in drv_ref.stats
        ]

    def test_resume_mismatch_refused(self, karate, shards):
        ss, cpdir = shards
        with pytest.raises(_Boom):
            sharded_msbfs(ss, [0, 16],
                          driver=_crashing_driver(ss, cpdir, crash_after=2))
        with pytest.raises(CorruptCheckpoint, match="mismatch"):
            sharded_msbfs(ss, [0, 33], driver=_resume_driver(ss, cpdir))

    def test_corrupt_checkpoint_refused_on_resume(self, karate, shards):
        ss, cpdir = shards
        with pytest.raises(_Boom):
            sharded_msbfs(ss, [0, 16],
                          driver=_crashing_driver(ss, cpdir, crash_after=2))
        [ckpt] = cpdir.glob("*.ckpt")
        blob = bytearray(ckpt.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        ckpt.write_bytes(bytes(blob))
        with pytest.raises(CorruptCheckpoint):
            sharded_msbfs(ss, [0, 16], driver=_resume_driver(ss, cpdir))

    def test_disarmed_driver_ignores_checkpoints(self, karate, shards):
        ss, cpdir = shards
        with pytest.raises(_Boom):
            sharded_msbfs(ss, [0, 16],
                          driver=_crashing_driver(ss, cpdir, crash_after=2))
        # resume=False: a fresh non-resuming driver starts from scratch
        drv = BSPDriver(
            ss, checkpointer=BSPCheckpointer(cpdir, every=1, resume=False)
        )
        got = sharded_msbfs(ss, [0, 16], driver=drv)
        ref = msbfs(karate, [0, 16])
        assert got.distances.tobytes() == ref.distances.tobytes()


# ---------------------------------------------------------------------------
# Stream engine durability (tier-1)
# ---------------------------------------------------------------------------
class TestStreamDurability:
    def test_save_load_mid_stream_bit_identical(self, karate, tmp_path):
        evs = crawl_events(
            karate, policy="mod", batch_size=6,
            rng=np.random.default_rng(1),
        )
        batches = list(group_batches(evs))
        cut = len(batches) // 2
        full = StreamEngine(karate.n_vertices, k=5)
        for b in batches:
            full.apply_batch(b)

        part = StreamEngine(karate.n_vertices, k=5)
        for b in batches[:cut]:
            part.apply_batch(b)
        ckpt = tmp_path / "stream.ckpt"
        part.save(ckpt)
        resumed = StreamEngine.load(ckpt)
        for b in batches[cut:]:
            resumed.apply_batch(b)
        assert [r.checksum for r in full.results] == [
            r.checksum for r in resumed.results
        ]

    def test_corrupt_stream_checkpoint_refused(self, karate, tmp_path):
        eng = StreamEngine(karate.n_vertices)
        ckpt = tmp_path / "stream.ckpt"
        eng.save(ckpt)
        blob = bytearray(ckpt.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        ckpt.write_bytes(bytes(blob))
        with pytest.raises(CorruptCheckpoint):
            StreamEngine.load(ckpt)

    @pytest.fixture()
    def events_file(self, karate, tmp_path):
        evs = crawl_events(
            karate, policy="bfs", batch_size=8,
            rng=np.random.default_rng(0),
        )
        path = tmp_path / "karate.events"
        write_events(path, evs, n_vertices=karate.n_vertices)
        return path, list(group_batches(evs)), karate.n_vertices

    def test_cli_resume_output_bit_identical(self, events_file, tmp_path):
        path, batches, n = events_file
        out_full = tmp_path / "full.json"
        assert cli_main(["stream", str(path), "-o", str(out_full)]) == 0

        # Simulate a crash mid-run: a checkpoint holding the first few
        # completed batches (what --checkpoint-dir leaves behind when
        # the process dies during the next batch).
        ckpt_dir = tmp_path / "ck"
        ckpt_dir.mkdir()
        part = StreamEngine(n)  # CLI defaults: components,stats,degree k=10
        for b in batches[: len(batches) // 2]:
            part.apply_batch(b)
        part.save(ckpt_dir / "stream.ckpt")

        out_resumed = tmp_path / "resumed.json"
        assert cli_main(["stream", str(path),
                         "--checkpoint-dir", str(ckpt_dir),
                         "-o", str(out_resumed)]) == 0
        assert out_resumed.read_bytes() == out_full.read_bytes()

    def test_cli_resume_config_mismatch_refused(self, events_file, tmp_path,
                                                capsys):
        path, _, n = events_file
        ckpt_dir = tmp_path / "ck"
        ckpt_dir.mkdir()
        StreamEngine(n, k=5).save(ckpt_dir / "stream.ckpt")  # k != CLI's 10
        assert cli_main(["stream", str(path),
                         "--checkpoint-dir", str(ckpt_dir)]) == 1
        assert "config mismatch" in capsys.readouterr().err

    def test_cli_resume_foreign_stream_refused(self, events_file, tmp_path,
                                               capsys):
        path, _, n = events_file
        ckpt_dir = tmp_path / "ck"
        ckpt_dir.mkdir()
        other = StreamEngine(n)
        from repro.dynamic import EdgeEvent

        other.apply_batch([EdgeEvent("add", 0, 1, t=0)])
        other.save(ckpt_dir / "stream.ckpt")
        assert cli_main(["stream", str(path),
                         "--checkpoint-dir", str(ckpt_dir)]) == 1
        assert "not a prefix" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Restart-safe daemon (tier-1)
# ---------------------------------------------------------------------------
class TestServeDurability:
    def _mk(self, state_dir):
        from repro.serve.server import ReproServer, ServeConfig

        return ReproServer(ServeConfig(
            port=0, max_batch_delay=0.01, state_dir=str(state_dir)
        ))

    def _client(self, srv):
        from repro.serve.client import ServeClient

        host, port = srv.address
        return ServeClient(host, port)

    def test_recovering_envelope_until_replayed(self, tmp_path):
        with self._mk(tmp_path / "state") as srv:
            srv.start_background()
            client = self._client(srv)
            # health stays answerable and reports the flag
            doc = client.health()
            assert doc["ok"] is True and doc["recovering"] is True
            # data-plane routes answer 503/recovering
            with pytest.raises(ServiceRecovering):
                client.graphs()
            with pytest.raises(ServiceRecovering):
                client.submit("g", "bfs", source=0)
            srv.recover()
            assert client.health()["recovering"] is False
            assert client.graphs()["resident"] == []

    def test_restart_readmits_loads_and_ingests(self, karate, tmp_path):
        state = tmp_path / "state"
        gpath = tmp_path / "karate.txt"
        graph_io.write_edge_list(karate, str(gpath))

        with self._mk(state) as srv:
            srv.start_background()
            srv.recover()
            client = self._client(srv)
            client.load(str(gpath), name="k")
            doc = client.ingest("k", [[1, "add", 0, 33], [1, "add", 2, 30]])
            n_edges_after = doc["batches"][-1]["n_edges"]
            before = client.submit("k", "connected_components")["value"]

        with self._mk(state) as srv2:
            srv2.start_background()
            summary = srv2.recover()
            assert summary["loads"] == 1 and summary["ingests"] == 1
            client2 = self._client(srv2)
            resident = client2.graphs()["resident"]
            assert [e["name"] for e in resident] == ["k"]
            assert resident[0]["n_edges"] == n_edges_after
            after = client2.submit("k", "connected_components")["value"]
            assert after == before

    def test_restart_respects_evictions(self, karate, tmp_path):
        state = tmp_path / "state"
        gpath = tmp_path / "karate.txt"
        graph_io.write_edge_list(karate, str(gpath))
        with self._mk(state) as srv:
            srv.start_background()
            srv.recover()
            client = self._client(srv)
            client.load(str(gpath), name="a")
            client.load(str(gpath), name="b")
            client.evict("a")
        with self._mk(state) as srv2:
            srv2.start_background()
            summary = srv2.recover()
            assert summary == {
                "loads": 2, "evicts": 1, "ingests": 0, "skipped": 0
            }
            assert self._client(srv2).graphs()["resident"][0]["name"] == "b"

    def test_vanished_source_skipped_not_fatal(self, karate, tmp_path):
        state = tmp_path / "state"
        gpath = tmp_path / "karate.txt"
        graph_io.write_edge_list(karate, str(gpath))
        with self._mk(state) as srv:
            srv.start_background()
            srv.recover()
            self._client(srv).load(str(gpath), name="k")
        gpath.unlink()
        with self._mk(state) as srv2:
            srv2.start_background()
            summary = srv2.recover()
            assert summary["skipped"] == 1 and summary["loads"] == 0
            assert self._client(srv2).graphs()["resident"] == []


# ---------------------------------------------------------------------------
# crash_full: real SIGKILLed coordinators (excluded from tier-1)
# ---------------------------------------------------------------------------
def _cli_env():
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _cli_argv(*args):
    return [sys.executable, "-m", "repro", *args]


def _strip_seconds(doc):
    if isinstance(doc, dict):
        return {k: _strip_seconds(v) for k, v in doc.items()
                if k not in ("seconds", "seconds_total")}
    if isinstance(doc, list):
        return [_strip_seconds(v) for v in doc]
    return doc


@pytest.mark.crash_full
class TestCrashMatrix:
    def test_shard_run_killed_mid_superstep_resumes_bit_identical(
        self, tmp_path
    ):
        from repro.generators.rmat import rmat

        g = rmat(10, 8.0, rng=np.random.default_rng(7))
        gpath = tmp_path / "g.npz"
        graph_io.save_npz(g, gpath)
        root = tmp_path / "ss"
        assert cli_main(["shard", "build", str(gpath), "-o", str(root),
                         "-k", "4"]) == 0
        ckpt_dir = tmp_path / "cp"
        ref_metrics = tmp_path / "ref.json"
        base = ["shard", "run", str(root),
                "--algo", "msbfs,components,pla",
                "--sources", "0,5,33"]
        run = [*base, "--checkpoint-every", "1",
               "--checkpoint-dir", str(ckpt_dir)]
        # reference: uninterrupted, checkpointing disabled
        assert cli_main([*base, "--metrics", str(ref_metrics)]) == 0
        ref = _strip_seconds(json.loads(ref_metrics.read_text())["algos"])

        out = run_coordinator_killed(
            _cli_argv(*run),
            files_appeared(ckpt_dir, "*.ckpt", 2),
            env=_cli_env(), timeout=300.0,
        )
        assert out["outcome"] == "killed"
        assert list(ckpt_dir.glob("*.ckpt"))

        metrics = tmp_path / "resumed.json"
        proc = subprocess.run(
            _cli_argv(*run, "--resume", "--metrics", str(metrics)),
            env=_cli_env(), capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        got = _strip_seconds(json.loads(metrics.read_text())["algos"])
        assert got == ref

    def test_stream_killed_mid_batch_resumes_bit_identical(self, tmp_path):
        g = karate_club()
        evs = crawl_events(g, policy="bfs", batch_size=4,
                           rng=np.random.default_rng(0))
        epath = tmp_path / "k.events"
        write_events(epath, evs, n_vertices=g.n_vertices)
        out_full = tmp_path / "full.json"
        assert cli_main(["stream", str(epath), "-o", str(out_full)]) == 0

        ckpt_dir = tmp_path / "cp"
        out_resumed = tmp_path / "resumed.json"
        run = ["stream", str(epath), "--checkpoint-dir", str(ckpt_dir),
               "-o", str(out_resumed)]
        out = run_coordinator_killed(
            _cli_argv(*run),
            files_appeared(ckpt_dir, "stream.ckpt", 1),
            env=_cli_env(), timeout=300.0,
        )
        if out["outcome"] == "killed":
            proc = subprocess.run(
                _cli_argv(*run), env=_cli_env(),
                capture_output=True, text=True, timeout=600,
            )
            assert proc.returncode == 0, proc.stderr
        assert out_resumed.read_bytes() == out_full.read_bytes()

    def test_daemon_killed_after_ingest_readmits_on_restart(self, tmp_path):
        import http.client
        import signal

        from repro.serve.client import ServeClient

        g = karate_club()
        gpath = tmp_path / "k.txt"
        graph_io.write_edge_list(g, str(gpath))
        state = tmp_path / "state"
        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            port = s.getsockname()[1]

        proc = subprocess.Popen(
            _cli_argv("serve", "--port", str(port),
                      "--state-dir", str(state)),
            env=_cli_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            client = ServeClient("127.0.0.1", port)
            deadline = time.monotonic() + 60
            while True:
                try:
                    if client.health()["recovering"] is False:
                        break
                except (OSError, http.client.HTTPException):
                    pass
                assert time.monotonic() < deadline, "daemon never came up"
                time.sleep(0.05)
            client.load(str(gpath), name="k")
            doc = client.ingest("k", [[1, "add", 0, 33]])
            n_edges = doc["batches"][-1]["n_edges"]
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        from repro.serve.server import ReproServer, ServeConfig

        with ReproServer(ServeConfig(
            port=0, max_batch_delay=0.01, state_dir=str(state)
        )) as srv:
            summary = srv.recover()
            assert summary["loads"] == 1 and summary["ingests"] == 1
            entry = srv.registry.get("k")
            assert entry.graph.n_edges == n_edges
