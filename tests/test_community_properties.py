"""Hypothesis property tests for modularity and the clustering stack."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.community import (
    ModularityTracker,
    cnm,
    modularity,
    pla,
    pma,
)
from repro.community.buckets import MultiLevelBucket
from repro.graph import from_edge_array


def _graph_from_edges(edges, n=16):
    src = np.asarray([e[0] for e in edges], dtype=np.int64)
    dst = np.asarray([e[1] for e in edges], dtype=np.int64)
    return from_edge_array(n, src, dst, directed=False)


edge_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)),
    min_size=1,
    max_size=60,
)
label_arrays = st.lists(st.integers(0, 5), min_size=16, max_size=16)


@given(edge_lists, label_arrays)
@settings(max_examples=80, deadline=None)
def test_modularity_bounds(edges, labels):
    g = _graph_from_edges(edges)
    q = modularity(g, np.asarray(labels))
    assert -0.5 - 1e-9 <= q < 1.0


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_modularity_single_cluster_zero(edges):
    g = _graph_from_edges(edges)
    assert modularity(g, np.zeros(16)) == pytest.approx(0.0)


@given(edge_lists, label_arrays)
@settings(max_examples=60, deadline=None)
def test_modularity_matches_oracle_multi_component(edges, labels):
    # Audit regression: the vectorized modularity must agree with the
    # textbook double-sum on arbitrary (notably multi-component) graphs
    # and arbitrary labelings, including per-component labelings.
    from repro.qa.oracles import RefGraph
    from repro.qa.oracles import modularity as ref_modularity

    g = _graph_from_edges(edges)
    ref = RefGraph(16, edges)
    labels = np.asarray(labels)
    assert modularity(g, labels) == pytest.approx(
        ref_modularity(ref, labels.tolist()), abs=1e-9
    )


@given(edge_lists, label_arrays)
@settings(max_examples=60, deadline=None)
def test_modularity_label_renaming_invariance(edges, labels):
    g = _graph_from_edges(edges)
    labels = np.asarray(labels)
    renamed = labels * 37 + 5
    assert modularity(g, labels) == pytest.approx(modularity(g, renamed))


@given(edge_lists, st.data())
@settings(max_examples=50, deadline=None)
def test_tracker_splits_stay_consistent(edges, data):
    """Random split sequences: incremental Q == recomputed Q."""
    g = _graph_from_edges(edges)
    t = ModularityTracker(g)
    for _ in range(4):
        labs = np.unique(t.labels)
        lab = data.draw(st.sampled_from(list(labs)))
        members = np.nonzero(t.labels == lab)[0]
        if members.shape[0] < 2:
            continue
        cut = data.draw(st.integers(1, members.shape[0] - 1))
        t.split(members[:cut], members[cut:])
        t.check()  # raises on drift


@given(edge_lists)
@settings(max_examples=30, deadline=None)
def test_pma_equals_cnm_on_random_graphs(edges):
    """The SNAP data structures change nothing about the greedy result."""
    g = _graph_from_edges(edges)
    if g.n_edges == 0:
        return
    a = cnm(g)
    b = pma(g)
    assert a.extras["dendrogram"].merges == b.extras["dendrogram"].merges
    assert a.modularity == pytest.approx(b.modularity)


@given(edge_lists, st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_pla_never_below_singletons(edges, seed):
    """pLA only accepts improving merges → Q >= Q(singleton partition)."""
    g = _graph_from_edges(edges)
    if g.n_edges == 0:
        return
    r = pla(g, rng=np.random.default_rng(seed))
    q_singletons = modularity(g, np.arange(16))
    assert r.modularity >= q_singletons - 1e-9


@given(
    st.lists(
        st.tuples(st.integers(0, 40), st.floats(-0.99, 0.99)),
        min_size=0,
        max_size=100,
    )
)
@settings(max_examples=60, deadline=None)
def test_bucket_max_always_correct(ops):
    b = MultiLevelBucket()
    ref: dict[int, float] = {}
    for key, val in ops:
        b.insert(key, val)
        ref[key] = val
        top = b.max()
        assert top is not None
        assert top[1] == max(ref.values())
    b.check_invariants()


@given(edge_lists)
@settings(max_examples=30, deadline=None)
def test_clustering_results_partition_vertices(edges):
    g = _graph_from_edges(edges)
    if g.n_edges == 0:
        return
    for r in (pma(g), pla(g, rng=np.random.default_rng(0))):
        comms = r.communities()
        all_vertices = np.concatenate(comms) if comms else np.empty(0)
        assert np.array_equal(np.sort(all_vertices), np.arange(16))
