#!/usr/bin/env python3
"""Monitoring a transient interaction stream (paper §1's motivation +
§6's dynamic-networks future work).

Simulates a stream of interaction events ("massive, transient data
streams") over a fixed entity population: connectivity, degree and
triangle statistics stay exact under every insertion/deletion, a
windowed burst score flags an injected anomaly, and periodic CSR
snapshots feed the heavier static analyses (community structure via
spectral modularity).

Run:  python examples/streaming_monitor.py
"""

from __future__ import annotations

import numpy as np

from repro.community import spectral_modularity
from repro.dynamic import IncrementalComponents, StreamingStats
from repro.graph import from_edge_list


def main() -> None:
    rng = np.random.default_rng(7)
    n = 400
    blocks = np.repeat(np.arange(4), n // 4)  # latent communities

    stats = StreamingStats(n, window=256)
    conn = IncrementalComponents(n)
    live: list[tuple[int, int]] = []

    def emit(u: int, v: int) -> None:
        if u != v and stats.add_edge(u, v):
            conn.add_edge(u, v)
            live.append((u, v))

    # --- phase 1: organic growth (mostly intra-community contacts) ----
    for step in range(4000):
        if rng.random() < 0.9:
            b = int(rng.integers(0, 4))
            members = np.nonzero(blocks == b)[0]
            u, v = rng.choice(members, size=2, replace=False)
        else:
            u, v = rng.integers(0, n, size=2)
        emit(int(u), int(v))
    print(
        f"after growth: {stats.n_edges} edges, "
        f"{conn.n_components} components, "
        f"clustering {stats.global_clustering:.3f}, "
        f"{stats.n_triangles} triangles"
    )

    # --- phase 2: churn (drop stale contacts) --------------------------
    rng.shuffle(live)
    for u, v in live[:600]:
        if stats.delete_edge(u, v):
            conn.delete_edge(u, v)
    print(
        f"after churn:  {stats.n_edges} edges, "
        f"{conn.n_components} components, "
        f"clustering {stats.global_clustering:.3f}"
    )

    # --- phase 3: anomaly — one entity suddenly contacts everyone ------
    attacker = 13
    for _ in range(120):
        emit(attacker, int(rng.integers(0, n)))
    scores = [(v, stats.burst_score(v)) for v in range(n)]
    top = sorted(scores, key=lambda t: -t[1])[:3]
    print("burst scores (top 3):",
          [(v, round(s, 2)) for v, s in top])
    assert top[0][0] == attacker, "anomaly detection missed the attacker"
    print(f"flagged entity {top[0][0]} "
          f"({top[0][1]:.0%} of recent events) — matches injected anomaly")

    # --- phase 4: snapshot → static community analysis -----------------
    snapshot = stats._snapshot()
    result = spectral_modularity(snapshot, rng=np.random.default_rng(0))
    print(f"snapshot communities: {result.summary()}")
    # latent blocks should dominate the found communities
    agreement = 0.0
    for b in range(4):
        found = result.labels[blocks == b]
        agreement += np.max(np.bincount(found)) / found.shape[0]
    print(f"alignment with latent communities: {agreement / 4:.0%}")


if __name__ == "__main__":
    main()
