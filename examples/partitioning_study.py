#!/usr/bin/env python3
"""Why classical partitioners fail on small-world networks (paper §2.2).

A miniature of the paper's Table 1 experiment: partition a
nearly-Euclidean road network and an R-MAT small-world network into
k parts with multilevel and spectral methods, and watch the cut quality
diverge by an order of magnitude.  Then show what the paper proposes
instead: optimize *modularity* with pLA, and compare conductance of the
resulting communities against the balanced partition.

Run:  python examples/partitioning_study.py
"""

from __future__ import annotations

import numpy as np

from repro.community import pla
from repro.errors import ConvergenceError, PartitioningError
from repro.generators import rmat, road_network
from repro.partitioning import (
    conductance,
    edge_cut,
    multilevel_kway,
    multilevel_recursive_bisection,
    partition_balance,
    spectral_kway,
)

K = 8


def partition_report(name: str, g) -> None:
    print(f"\n--- {name}: {g} ---")
    for pname, fn in (
        ("multilevel k-way  ", lambda: multilevel_kway(g, K)),
        ("multilevel recur  ", lambda: multilevel_recursive_bisection(g, K)),
        ("spectral (RQI)    ", lambda: spectral_kway(g, K, method="rqi")),
        ("spectral (Lanczos)", lambda: spectral_kway(g, K, method="lanczos")),
    ):
        try:
            parts = fn()
            print(
                f"  {pname}: cut={edge_cut(g, parts):8,.0f}  "
                f"balance={partition_balance(g, parts, K):.2f}  "
                f"({edge_cut(g, parts) / g.n_edges:.1%} of edges cut)"
            )
        except (ConvergenceError, PartitioningError) as exc:
            print(f"  {pname}: failed — {exc}")


def main() -> None:
    rng = np.random.default_rng(0)
    road = road_network(1500, 8, rng=rng)
    sw = rmat(11, 5.0, rng=rng)

    partition_report("Physical (road)", road)
    partition_report("Small-world (R-MAT)", sw)

    # The paper's alternative for small-world graphs: modularity-based
    # community detection — unbalanced clusters, but *meaningful* cuts.
    print("\n--- modularity clustering instead of balanced partitioning ---")
    result = pla(sw, rng=np.random.default_rng(1))
    print(f"  pLA: {result.summary()}")
    comms = sorted(result.communities(), key=len, reverse=True)
    for i, comm in enumerate(comms[:3]):
        mask = np.zeros(sw.n_vertices, dtype=bool)
        mask[comm] = True
        print(
            f"  community {i}: {len(comm):5d} vertices, "
            f"conductance {conductance(sw, mask):.3f}"
        )
    balanced = multilevel_kway(sw, K)
    mask = balanced == 0
    print(
        f"  vs balanced part 0: {int(mask.sum()):5d} vertices, "
        f"conductance {conductance(sw, mask):.3f}"
    )


if __name__ == "__main__":
    main()
