#!/usr/bin/env python3
"""Community detection in a citation network, end to end.

The paper's motivating workload: a large directed interaction graph
(here the KDD-Cup-style citation surrogate) whose latent research
communities must be identified.  The script walks the full SNAP
pipeline — ignore directivity (paper §5), preprocess, pick an algorithm
with the report's heuristics, cluster with all three algorithms, and
compare quality and cost — then inspects the pBD dendrogram.

Run:  python examples/citation_communities.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.community import pbd, pla, pma
from repro.datasets import load_surrogate
from repro.graph.builder import induced_subgraph
from repro.kernels import largest_component
from repro.metrics import preprocess


def main() -> None:
    g = load_surrogate("Citations", scale=0.02, rng=np.random.default_rng(5))
    print(f"citation surrogate: {g}")

    # §5: "We ignore edge directivity in the community detection
    # algorithms."
    und = g.as_undirected()
    core, _ = induced_subgraph(und, largest_component(und))
    print(f"analysis graph (giant component, undirected): {core}")

    report = preprocess(core)
    print(
        f"degree skew {report.degree_skewness:.1f}, clustering "
        f"{report.average_clustering:.3f}, assortativity "
        f"{report.assortativity:+.3f}"
    )
    if report.pronounced_community_structure:
        print("preprocessing verdict: pronounced structure — pLA will do well")
    else:
        print("preprocessing verdict: weak structure — divisive pBD is safer")

    results = {}
    for name, fn in (
        ("pLA", lambda: pla(core, rng=np.random.default_rng(0))),
        ("pMA", lambda: pma(core)),
        ("pBD", lambda: pbd(core, patience=10, rng=np.random.default_rng(0))),
    ):
        t0 = time.perf_counter()
        results[name] = fn()
        dt = time.perf_counter() - t0
        r = results[name]
        print(f"{name}: Q={r.modularity:.3f}  clusters={r.n_clusters}  "
              f"({dt:.1f}s)")

    # Inspect pBD's divisive trace: modularity over deletions.
    trace = results["pBD"].extras["trace"]
    peak = trace.best_step()
    print(
        f"pBD removed {trace.n_steps} edges; modularity peaked at "
        f"deletion {peak} (Q = {trace.best_score:.3f})"
    )
    checkpoints = np.linspace(0, trace.n_steps - 1, 6).astype(int)
    print("Q trajectory:", [round(trace.scores[i], 3) for i in checkpoints])

    # Communities of the best algorithm.
    best = max(results.values(), key=lambda r: r.modularity)
    sizes = sorted((len(c) for c in best.communities()), reverse=True)
    print(
        f"best partition ({best.algorithm}): top community sizes {sizes[:8]}"
    )


if __name__ == "__main__":
    main()
