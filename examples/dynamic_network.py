#!/usr/bin/env python3
"""Dynamic graph updates with the hybrid adjacency representation.

Demonstrates the paper's §3 data-structure story: streams of edge
insertions/deletions handled by resizable adjacency arrays, with
high-degree vertices promoted to treaps for fast membership tests and
set-algebraic neighborhood queries, plus snapshotting to CSR for the
static analysis kernels.

Run:  python examples/dynamic_network.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.graph import DynamicGraph, HybridAdjacency
from repro.kernels import connected_components
from repro.metrics import average_clustering


def main() -> None:
    rng = np.random.default_rng(42)
    n = 3000

    # --- 1. stream edges into a dynamic graph -------------------------
    dyn = DynamicGraph(n, sorted_adjacency=True)
    hub = 0
    t0 = time.perf_counter()
    for _ in range(12_000):
        if rng.random() < 0.3:
            u, v = hub, int(rng.integers(1, n))  # hub attracts edges
        else:
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u != v:
            dyn.add_edge(u, v)
    # interleave deletions
    deleted = 0
    for _ in range(2_000):
        u = int(rng.integers(0, n))
        nbrs = dyn.neighbors(u)
        if nbrs.shape[0]:
            deleted += dyn.delete_edge(u, int(nbrs[rng.integers(0, nbrs.shape[0])]))
    dt = time.perf_counter() - t0
    print(f"streamed {dyn.n_edges} live edges ({deleted} deletions) in {dt:.2f}s")
    print(f"hub degree: {dyn.degree(hub)}")

    # --- 2. hybrid adjacency: treaps for the hub -----------------------
    snapshot = dyn.to_csr()
    hyb = HybridAdjacency.from_csr(snapshot, degree_threshold=64)
    promoted = [v for v in range(n) if hyb.is_promoted(v)]
    print(f"hybrid adjacency promoted {len(promoted)} hot vertices to treaps")
    # set-algebraic neighborhood query on the hub
    other = promoted[1] if len(promoted) > 1 else int(np.argsort(snapshot.degrees())[-2])
    common = hyb.common_neighbors(hub, other)
    print(
        f"common neighbors of {hub} (deg {hyb.degree(hub)}) and {other} "
        f"(deg {hyb.degree(other)}): {common.shape[0]}"
    )

    # --- 3. snapshot to CSR and run static kernels ---------------------
    labels = connected_components(snapshot)
    n_comp = int(np.unique(labels).shape[0])
    print(
        f"snapshot: {snapshot} → {n_comp} components, "
        f"clustering coefficient {average_clustering(snapshot):.4f}"
    )

    # --- 4. keep mutating, re-snapshot ----------------------------------
    for v in range(1, 50):
        dyn.add_edge(hub, v)
    snap2 = dyn.to_csr()
    print(f"after burst of hub insertions: hub degree {snap2.degree(hub)}")


if __name__ == "__main__":
    main()
