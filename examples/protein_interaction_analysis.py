#!/usr/bin/env python3
"""Protein-interaction network analysis (paper §3 and ref [10]).

Reproduces the paper's computational-biology workflow on the PPI
surrogate: topological characterization, centrality-based essentiality
ranking, and the articulation-point "lethality screen" — the
observation that low-degree articulation points of a protein network
are likely sampling artifacts, not essential proteins.

Run:  python examples/protein_interaction_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.centrality import betweenness_centrality, closeness_centrality
from repro.community import pla
from repro.datasets import load_surrogate
from repro.graph.attributes import AttributedGraph
from repro.graph.builder import induced_subgraph
from repro.kernels import largest_component
from repro.metrics import (
    degree_distribution,
    lethality_screen,
    preprocess,
    rich_club_coefficient,
)


def main() -> None:
    g = load_surrogate("PPI", scale=0.15, rng=np.random.default_rng(11))
    print(f"PPI surrogate: {g}")

    # --- 1. topology ---------------------------------------------------
    report = preprocess(g)
    print(f"{report.n_components} components; giant component "
          f"{report.largest_component_fraction:.0%} of the network")
    ks, pk = degree_distribution(g)
    print(f"degree range [{ks[0]}, {ks[-1]}], "
          f"P(k=1) = {pk[0]:.2f} (sparse periphery)")
    rc = rich_club_coefficient(g)
    some_k = sorted(rc)[len(rc) // 2]
    print(f"rich-club φ({some_k}) = {rc[some_k]:.3f}")

    # --- 2. restrict to the giant component ----------------------------
    core, original_ids = induced_subgraph(g, largest_component(g))
    print(f"analyzing giant component: {core}")

    # --- 3. essentiality ranking by centrality -------------------------
    bc = betweenness_centrality(core)
    cc = closeness_centrality(core)
    deg = core.degrees()
    ag = AttributedGraph(
        core,
        vertex_attrs={
            "betweenness": bc,
            "closeness": cc,
            "degree": deg.astype(float),
        },
    )
    order = np.argsort(bc)[::-1]
    print("candidate essential proteins (top betweenness):")
    for v in order[:5]:
        attrs = ag.vertex_attributes.as_dict(int(v))
        print(f"  protein {int(original_ids[v])}: deg={attrs['degree']:.0f} "
              f"BC={attrs['betweenness']:.0f} CC={attrs['closeness']:.3f}")

    # --- 4. the lethality screen ----------------------------------------
    flagged = lethality_screen(core, degree_threshold=3)
    print(f"lethality screen: {flagged.shape[0]} low-degree articulation "
          "points — cut vertices unlikely to be biologically essential")

    # --- 5. functional modules ------------------------------------------
    modules = pla(core, rng=np.random.default_rng(0))
    sizes = sorted((len(c) for c in modules.communities()), reverse=True)
    print(f"pLA found {modules.n_clusters} putative functional modules "
          f"(Q = {modules.modularity:.3f}); largest: {sizes[:5]}")


if __name__ == "__main__":
    main()
