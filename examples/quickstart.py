#!/usr/bin/env python3
"""Quickstart: build a graph, explore it, find communities.

The 60-second tour of the library: construct a small-world graph,
run the exploratory-analysis battery SNAP is built around (paper §3),
and compare the three community-detection algorithms of §4.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import community, generators, kernels, metrics
from repro.centrality import betweenness_centrality, degree_centrality


def main() -> None:
    # 1. Generate an R-MAT small-world graph (the paper's RMAT-SF family).
    g = generators.rmat(scale=9, edge_factor=6, rng=np.random.default_rng(7))
    print(f"graph: {g}")

    # 2. Preprocessing report — the cheap metrics SNAP computes first to
    #    steer the expensive analyses.
    report = metrics.preprocess(g)
    print(f"components: {report.n_components} "
          f"(largest {report.largest_component_fraction:.0%})")
    print(f"average degree: {report.average_degree:.2f}, "
          f"degree skew: {report.degree_skewness:.2f}")
    print(f"clustering coefficient: {report.average_clustering:.3f}, "
          f"assortativity: {report.assortativity:+.3f}")
    print(f"small-world? {report.looks_small_world}")

    # 3. Kernels: BFS from the highest-degree hub.
    hub = int(np.argmax(g.degrees()))
    res = kernels.bfs(g, hub)
    print(f"BFS from hub {hub}: reached {res.n_reached}/{g.n_vertices} "
          f"vertices in {res.n_levels} levels (low diameter!)")

    # 4. Centrality: who matters?
    deg = degree_centrality(g, normalized=False)
    bc = betweenness_centrality(g)
    top = np.argsort(bc)[::-1][:5]
    print("top-5 betweenness vertices:",
          [(int(v), int(deg[v]), round(float(bc[v]), 1)) for v in top])

    # 5. Community detection with the three parallel algorithms, on a
    #    social network with planted ground-truth communities.
    pp = generators.planted_partition(
        [60] * 6, 0.25, 0.01, rng=np.random.default_rng(1)
    )
    truth_q = community.modularity(pp.graph, pp.labels)
    print(f"planted social network: {pp.graph}, ground-truth Q = {truth_q:.3f}")
    for fn, kwargs in (
        (community.pla, dict(rng=np.random.default_rng(0))),
        (community.pma, {}),
        (community.pbd, dict(patience=10, rng=np.random.default_rng(0))),
    ):
        result = fn(pp.graph, **kwargs)
        print(result.summary())


if __name__ == "__main__":
    main()
